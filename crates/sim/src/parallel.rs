//! Multi-threaded Monte-Carlo shot runner.

use std::thread;

/// Derives the RNG seed of global shot stream `stream` from a sweep-level
/// `base_seed` (golden-ratio mixing).
///
/// This is *the* seed schedule of the whole stack: sequential replays,
/// [`MemoryExperiment::estimate_parallel`](crate::MemoryExperiment::estimate_parallel),
/// the chip experiment's per-patch streams and the sweep engine's shot
/// kernels all derive per-shot RNGs through it, so a `(base_seed, stream)`
/// pair identifies the same shot everywhere.
pub fn shot_stream_seed(base_seed: u64, stream: u64) -> u64 {
    base_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `shots` independent trials across `num_threads` OS threads,
/// folding each trial into a per-thread accumulator and merging the
/// per-thread accumulators in thread order.
///
/// This is the general aggregation primitive behind
/// [`run_shots_parallel`]: experiments that need more than a failure count
/// (per-patch statistics, event histograms, …) fold into their own
/// accumulator type instead of a `bool`.  Each trial receives a distinct
/// `(thread_id, shot_index)` pair so the caller can derive independent,
/// reproducible RNG seeds; `merge` is applied left-to-right over the
/// per-thread results (thread 0 first), so the final value is deterministic
/// for deterministic `shot`/`merge`.
///
/// ```
/// use q3de_sim::run_shots_fold;
/// // Histogram of (thread + shot) mod 3 over 99 trials.
/// let hist = run_shots_fold(
///     99,
///     4,
///     [0usize; 3],
///     |thread, shot, acc: &mut [usize; 3]| acc[(thread + shot) % 3] += 1,
///     |mut a, b| {
///         for (x, y) in a.iter_mut().zip(b) {
///             *x += y;
///         }
///         a
///     },
/// );
/// assert_eq!(hist.iter().sum::<usize>(), 99);
/// ```
///
/// # Panics
///
/// Panics if `num_threads == 0` or if a worker thread panics.
pub fn run_shots_fold<A, Shot, Merge>(
    shots: usize,
    num_threads: usize,
    init: A,
    shot: Shot,
    merge: Merge,
) -> A
where
    A: Clone + Send,
    Shot: Fn(usize, usize, &mut A) + Sync,
    Merge: Fn(A, A) -> A,
{
    assert!(num_threads > 0, "at least one worker thread is required");
    if shots == 0 {
        return init;
    }
    let num_threads = num_threads.min(shots);
    let per_thread = shots / num_threads;
    let remainder = shots % num_threads;
    let shot_ref = &shot;

    thread::scope(|scope| {
        let handles: Vec<_> = (0..num_threads)
            .map(|thread_id| {
                let count = per_thread + usize::from(thread_id < remainder);
                let mut acc = init.clone();
                scope.spawn(move || {
                    for shot_index in 0..count {
                        shot_ref(thread_id, shot_index, &mut acc);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .reduce(merge)
            .expect("at least one worker ran")
    })
}

/// Runs `shots` independent trials across `num_threads` OS threads and
/// returns the number of trials for which `shot` returned `true`
/// (e.g. logical failures).  A thin wrapper over [`run_shots_fold`] with a
/// counting accumulator.
///
/// Each thread receives a distinct stream index `(thread_id, shot_index)` so
/// the caller can derive independent, reproducible RNG seeds.
///
/// ```
/// use q3de_sim::run_shots_parallel;
/// // Count "failures" of a deterministic toy predicate.
/// let failures = run_shots_parallel(100, 4, |thread, shot| (thread + shot) % 7 == 0);
/// assert!(failures > 0 && failures < 100);
/// ```
///
/// # Panics
///
/// Panics if `num_threads == 0` or if a worker thread panics.
pub fn run_shots_parallel<F>(shots: usize, num_threads: usize, shot: F) -> usize
where
    F: Fn(usize, usize) -> bool + Sync,
{
    run_shots_fold(
        shots,
        num_threads,
        0usize,
        |thread_id, shot_index, count| {
            if shot(thread_id, shot_index) {
                *count += 1;
            }
        },
        |a, b| a + b,
    )
}

/// Like [`run_shots_parallel`], but sizes the worker pool from
/// [`std::thread::available_parallelism`] (falling back to a single thread
/// when the parallelism cannot be determined) instead of requiring — and
/// panicking on — a caller-supplied thread count.
///
/// This is the ergonomic entry point the figure binaries use.
///
/// ```
/// use q3de_sim::run_shots_auto;
/// let failures = run_shots_auto(100, |thread, shot| (thread + shot) % 7 == 0);
/// assert!(failures > 0 && failures < 100);
/// ```
pub fn run_shots_auto<F>(shots: usize, shot: F) -> usize
where
    F: Fn(usize, usize) -> bool + Sync,
{
    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_shots_parallel(shots, num_threads, shot)
}

/// Like [`run_shots_fold`], but sizes the worker pool from
/// [`std::thread::available_parallelism`] (falling back to a single thread
/// when the parallelism cannot be determined).
pub fn run_shots_fold_auto<A, Shot, Merge>(shots: usize, init: A, shot: Shot, merge: Merge) -> A
where
    A: Clone + Send,
    Shot: Fn(usize, usize, &mut A) + Sync,
    Merge: Fn(A, A) -> A,
{
    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_shots_fold(shots, num_threads, init, shot, merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_shots_are_executed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let failures = run_shots_parallel(103, 5, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            true
        });
        assert_eq!(failures, 103);
        assert_eq!(counter.load(Ordering::SeqCst), 103);
    }

    #[test]
    fn zero_shots_is_a_noop() {
        assert_eq!(run_shots_parallel(0, 4, |_, _| true), 0);
    }

    #[test]
    fn thread_count_larger_than_shots_is_clamped() {
        let failures = run_shots_parallel(3, 64, |_, _| true);
        assert_eq!(failures, 3);
    }

    #[test]
    fn results_match_sequential_reference() {
        let predicate = |t: usize, s: usize| (t * 31 + s * 7).is_multiple_of(5);
        let parallel = run_shots_parallel(200, 4, predicate);
        // sequential reference with the same partitioning (4 threads, 50 each)
        let mut sequential = 0;
        for t in 0..4 {
            for s in 0..50 {
                if predicate(t, s) {
                    sequential += 1;
                }
            }
        }
        assert_eq!(parallel, sequential);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_is_rejected() {
        let _ = run_shots_parallel(10, 0, |_, _| false);
    }

    #[test]
    fn fold_aggregates_per_thread_accumulators_deterministically() {
        // A vector accumulator: per-class counts of (thread·31 + shot·7) % 4.
        let class = |t: usize, s: usize| (t * 31 + s * 7) % 4;
        let fold = |threads: usize| {
            run_shots_fold(
                201,
                threads,
                vec![0usize; 4],
                |t, s, acc: &mut Vec<usize>| acc[class(t, s)] += 1,
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            )
        };
        let counts = fold(5);
        assert_eq!(counts.iter().sum::<usize>(), 201);
        assert_eq!(fold(5), counts, "same partitioning, same result");
        // The counting wrapper agrees with a fold over the same predicate.
        let wrapper = run_shots_parallel(201, 5, |t, s| class(t, s) == 0);
        assert_eq!(wrapper, counts[0]);
    }

    #[test]
    fn fold_with_zero_shots_returns_init() {
        let init = vec![7usize; 3];
        let out = run_shots_fold(0, 4, init.clone(), |_, _, _: &mut Vec<usize>| {}, |a, _| a);
        assert_eq!(out, init);
        assert_eq!(
            run_shots_fold_auto(0, 42usize, |_, _, _: &mut usize| {}, |a, _| a),
            42
        );
    }

    #[test]
    fn fold_merges_in_thread_order() {
        // Record which thread contributed which shots; the merged transcript
        // must list thread 0's shots first, then thread 1's, etc.
        let transcript = run_shots_fold(
            10,
            3,
            Vec::new(),
            |t, s, acc: &mut Vec<(usize, usize)>| acc.push((t, s)),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        assert_eq!(transcript.len(), 10);
        let threads: Vec<usize> = transcript.iter().map(|&(t, _)| t).collect();
        let mut sorted = threads.clone();
        sorted.sort_unstable();
        assert_eq!(threads, sorted, "thread blocks merge in order");
    }

    #[test]
    fn auto_variant_runs_every_shot_exactly_once() {
        let counter = AtomicUsize::new(0);
        let failures = run_shots_auto(57, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            true
        });
        assert_eq!(failures, 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
        assert_eq!(run_shots_auto(0, |_, _| true), 0);
    }
}
