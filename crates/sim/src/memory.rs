//! The d-cycle idling (memory) experiment.

use q3de_decoder::{ContextPool, DecoderConfig, MatcherKind, SyndromeHistory, WeightModel};
use q3de_lattice::{Coord, ErrorKind, LatticeError, MatchingGraph, SurfaceCode};
use q3de_noise::{AnomalousRegion, NoiseModel};
use rand::{Rng, SeedableRng};

/// How the decoder is driven in a memory shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodingStrategy {
    /// No anomalous region is injected at all (the solid "MBBE free" curves).
    MbbeFree,
    /// The anomalous region is injected but the decoder keeps uniform
    /// weights — the paper's "without rollback" curves.
    Blind,
    /// The anomalous region is injected and the decoder re-executes with
    /// anomaly-aware weights — the paper's "with rollback" curves.
    AnomalyAware,
}

/// Description of the anomalous region injected into a memory shot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyInjection {
    /// Anomaly size `d_ano` in data-qubit units.
    pub size: usize,
    /// Physical error rate `p_ano` inside the region.
    pub rate: f64,
    /// Top-left grid site of the region; `None` centres it on the patch.
    pub origin: Option<Coord>,
}

impl AnomalyInjection {
    /// The paper's default burst: `d_ano = 4`, `p_ano = 0.5`, centred.
    pub fn mcewen_default() -> Self {
        Self {
            size: 4,
            rate: 0.5,
            origin: None,
        }
    }

    /// A centred burst of the given size and rate.
    pub fn centered(size: usize, rate: f64) -> Self {
        Self {
            size,
            rate,
            origin: None,
        }
    }
}

/// Configuration of a memory experiment.
#[derive(Debug, Clone, Copy)]
pub struct MemoryExperimentConfig {
    /// Code distance `d`.
    pub distance: usize,
    /// Number of noisy syndrome-extraction rounds (the paper idles for `d`
    /// cycles; `None` uses `distance`).
    pub rounds: Option<usize>,
    /// Physical error rate `p` of normal qubits per code cycle.
    pub physical_error_rate: f64,
    /// The anomalous region to inject, if any.
    pub anomaly: Option<AnomalyInjection>,
    /// Decoder configuration.
    pub decoder: DecoderConfig,
}

impl MemoryExperimentConfig {
    /// A configuration with `rounds = d`, no anomaly, default decoder.
    pub fn new(distance: usize, physical_error_rate: f64) -> Self {
        Self {
            distance,
            rounds: None,
            physical_error_rate,
            anomaly: None,
            decoder: DecoderConfig::default(),
        }
    }

    /// Adds an anomaly injection, builder style.
    pub fn with_anomaly(mut self, anomaly: AnomalyInjection) -> Self {
        self.anomaly = Some(anomaly);
        self
    }

    /// Overrides the number of noisy rounds, builder style.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Selects the matching backend the decoder uses, builder style.
    pub fn with_matcher(mut self, matcher: MatcherKind) -> Self {
        self.decoder.matcher = matcher;
        self
    }

    /// The effective number of noisy rounds.
    pub fn effective_rounds(&self) -> usize {
        self.rounds.unwrap_or(self.distance)
    }
}

/// Result of a single memory shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShotOutcome {
    /// Whether the shot ended in a logical `X` error.
    pub logical_failure: bool,
    /// Number of detection events that had to be matched.
    pub num_detection_events: usize,
}

/// Aggregated Monte-Carlo estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateResult {
    /// Number of shots simulated.
    pub shots: usize,
    /// Number of shots that failed logically.
    pub failures: usize,
    /// Number of noisy rounds per shot.
    pub rounds: usize,
}

impl EstimateResult {
    /// Logical error rate per shot (per `rounds` code cycles).
    pub fn logical_error_rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.failures as f64 / self.shots as f64
    }

    /// Logical error rate per code cycle,
    /// `1 − (1 − p_shot)^(1/rounds)` ≈ `p_shot / rounds`.
    pub fn logical_error_rate_per_cycle(&self) -> f64 {
        let per_shot = self.logical_error_rate().min(1.0 - 1e-15);
        1.0 - (1.0 - per_shot).powf(1.0 / self.rounds as f64)
    }

    /// Standard error of the per-shot estimate (binomial).
    pub fn standard_error(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.logical_error_rate();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Merges two estimates taken with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if the two estimates used a different number of rounds.
    pub fn merge(&self, other: &EstimateResult) -> EstimateResult {
        assert_eq!(
            self.rounds, other.rounds,
            "cannot merge estimates with different rounds"
        );
        EstimateResult {
            shots: self.shots + other.shots,
            failures: self.failures + other.failures,
            rounds: self.rounds,
        }
    }
}

/// A reusable memory-experiment simulator for one parameter point.
///
/// The experiment owns a [`ContextPool`]: every shot checks a warm
/// [`q3de_decoder::DecoderContext`] out (the cached space-time graph and
/// backend scratch survive across all shots of a sweep point), so decoder
/// state is constructed once per concurrently decoding worker, not once
/// per shot.  Cloning the experiment starts a fresh, cold pool.
#[derive(Debug, Clone)]
pub struct MemoryExperiment {
    config: MemoryExperimentConfig,
    code: SurfaceCode,
    graph: MatchingGraph,
    region: Option<AnomalousRegion>,
    decoders: ContextPool,
}

impl MemoryExperiment {
    /// Builds the simulator (code geometry, matching graph and anomalous
    /// region) for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the code distance is invalid.
    pub fn new(config: MemoryExperimentConfig) -> Result<Self, LatticeError> {
        let code = SurfaceCode::new(config.distance)?;
        let graph = code.matching_graph(ErrorKind::X);
        let rounds = config.effective_rounds();
        let region = config.anomaly.map(|a| {
            let origin = a.origin.unwrap_or_else(|| {
                // centre the 2·size × 2·size region on the patch
                let mid = code.grid_size() / 2;
                let half = a.size as i32;
                Coord::new((mid - half).max(0), (mid - half).max(0))
            });
            // the burst lasts for the whole experiment window
            AnomalousRegion::new(origin, a.size, 0, rounds as u64 + 1, a.rate)
        });
        Ok(Self {
            config,
            code,
            graph,
            region,
            decoders: ContextPool::new(config.decoder),
        })
    }

    /// The experiment configuration.
    pub fn config(&self) -> &MemoryExperimentConfig {
        &self.config
    }

    /// The surface code being simulated.
    pub fn code(&self) -> &SurfaceCode {
        &self.code
    }

    /// The injected anomalous region, if any.
    pub fn region(&self) -> Option<&AnomalousRegion> {
        self.region.as_ref()
    }

    /// The X-sector matching graph the experiment samples and decodes over.
    pub(crate) fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// The noise model a shot with the given strategy experiences.
    pub fn noise_model(&self, strategy: DecodingStrategy) -> NoiseModel {
        let mut model = NoiseModel::uniform(self.config.physical_error_rate);
        if strategy != DecodingStrategy::MbbeFree {
            if let Some(region) = self.region {
                model.add_anomaly(region);
            }
        }
        model
    }

    /// The weight model the decoder uses under the given strategy.
    pub fn weight_model(&self, strategy: DecodingStrategy) -> WeightModel {
        match (strategy, self.region) {
            (DecodingStrategy::AnomalyAware, Some(region)) => {
                WeightModel::anomaly_aware(self.config.physical_error_rate, vec![region], 0)
            }
            _ => WeightModel::uniform(self.config.physical_error_rate),
        }
    }

    /// Samples one shot's syndrome stream — `rounds` noisy
    /// syndrome-extraction layers followed by a final perfect readout layer
    /// — and the actual logical cut parity of the accumulated error, without
    /// decoding.
    ///
    /// This is *the* syndrome-sampling kernel: [`MemoryExperiment::run_shot`]
    /// decodes exactly what it returns, and the differential tests and
    /// throughput benches sample through it too, so the RNG call order (data
    /// qubits in edge order, then one ancilla draw per node, per round) can
    /// never silently diverge between simulator, tests and benches.
    pub fn sample_history<R: Rng + ?Sized>(
        &self,
        strategy: DecodingStrategy,
        rng: &mut R,
    ) -> (SyndromeHistory, bool) {
        self.sample_history_with(&self.noise_model(strategy), rng)
    }

    /// Samples one shot's syndrome stream under an explicit noise model —
    /// the kernel behind [`MemoryExperiment::sample_history`], exposed so
    /// chip-level experiments can inject per-shot anomalous regions (e.g. a
    /// randomly placed strike fan-out) without rebuilding the experiment.
    ///
    /// The RNG call order is identical to [`MemoryExperiment::sample_history`]
    /// for *every* noise model — each qubit consumes exactly one uniform
    /// draw per cycle regardless of its rate — so per-patch streams stay
    /// reproducible across the single-patch and chip paths.
    pub fn sample_history_with<R: Rng + ?Sized>(
        &self,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> (SyndromeHistory, bool) {
        let rounds = self.config.effective_rounds();
        let n = self.graph.num_nodes();

        // cumulative X-component flips per data qubit (edge of the X graph)
        let mut flipped = vec![false; self.graph.num_edges()];
        let mut history = SyndromeHistory::new(n);

        for t in 0..rounds {
            // data-qubit errors at the beginning of the cycle
            for (edge_index, edge) in self.graph.edges().iter().enumerate() {
                let pauli = noise.sample_pauli(edge.qubit, t as u64, rng);
                if pauli.has_x_component() {
                    flipped[edge_index] = !flipped[edge_index];
                }
            }
            // syndrome extraction with ancilla (measurement) errors,
            // written straight into the history's flat layer storage
            let layer = history.push_blank_layer();
            for (node, slot) in layer.iter_mut().enumerate() {
                let mut parity = false;
                for &e in self.graph.incident_edges(node) {
                    if flipped[e] {
                        parity = !parity;
                    }
                }
                let ancilla_error = noise.sample_pauli(self.graph.node(node), t as u64, rng);
                if ancilla_error.has_x_component() {
                    parity = !parity;
                }
                *slot = parity;
            }
        }

        // final perfect readout layer
        let final_layer = history.push_blank_layer();
        for (node, slot) in final_layer.iter_mut().enumerate() {
            let mut parity = false;
            for &e in self.graph.incident_edges(node) {
                if flipped[e] {
                    parity = !parity;
                }
            }
            *slot = parity;
        }

        // actual logical parity of the accumulated error
        let error_cut_parity = self
            .graph
            .cut_edges()
            .iter()
            .filter(|&&e| flipped[e])
            .count()
            % 2
            == 1;
        (history, error_cut_parity)
    }

    /// Runs a single memory shot.
    pub fn run_shot<R: Rng + ?Sized>(
        &self,
        strategy: DecodingStrategy,
        rng: &mut R,
    ) -> ShotOutcome {
        let (history, error_cut_parity) = self.sample_history(strategy, rng);
        let outcome = self
            .decoders
            .with(|context| context.decode(&self.graph, &history, &self.weight_model(strategy)));
        ShotOutcome {
            logical_failure: outcome.is_logical_failure(error_cut_parity),
            num_detection_events: outcome.num_events(),
        }
    }

    /// Runs a single memory shot with explicit anomalous regions instead of
    /// the configured [`AnomalyInjection`] — the chip-level entry point: a
    /// cosmic-ray strike fanned out in chip coordinates hands each patch the
    /// regions that overlap it (possibly none, possibly hanging off the
    /// patch edge).
    ///
    /// Strategy semantics mirror [`MemoryExperiment::run_shot`]:
    /// `MbbeFree` ignores `regions` entirely, `Blind` injects them into the
    /// noise but decodes with uniform weights, `AnomalyAware` injects them
    /// and re-weights the decoder.
    pub fn run_shot_with<R: Rng + ?Sized>(
        &self,
        regions: &[AnomalousRegion],
        strategy: DecodingStrategy,
        rng: &mut R,
    ) -> ShotOutcome {
        let mut noise = NoiseModel::uniform(self.config.physical_error_rate);
        if strategy != DecodingStrategy::MbbeFree {
            for &region in regions {
                noise.add_anomaly(region);
            }
        }
        let weights = match strategy {
            DecodingStrategy::AnomalyAware if !regions.is_empty() => {
                WeightModel::anomaly_aware(self.config.physical_error_rate, regions.to_vec(), 0)
            }
            _ => WeightModel::uniform(self.config.physical_error_rate),
        };
        let (history, error_cut_parity) = self.sample_history_with(&noise, rng);
        let outcome = self
            .decoders
            .with(|context| context.decode(&self.graph, &history, &weights));
        ShotOutcome {
            logical_failure: outcome.is_logical_failure(error_cut_parity),
            num_detection_events: outcome.num_events(),
        }
    }

    /// Monte-Carlo estimate of the logical error rate over `shots` shots.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        shots: usize,
        strategy: DecodingStrategy,
        rng: &mut R,
    ) -> EstimateResult {
        let failures = (0..shots)
            .filter(|_| self.run_shot(strategy, rng).logical_failure)
            .count();
        EstimateResult {
            shots,
            failures,
            rounds: self.config.effective_rounds(),
        }
    }

    /// Runs the shot of global stream index `stream`: a fresh RNG of type
    /// `R` is seeded from [`crate::shot_stream_seed`]`(base_seed, stream)`
    /// and handed to [`MemoryExperiment::run_shot`].
    ///
    /// This is the kernel behind [`MemoryExperiment::estimate_parallel`] and
    /// the sweep engine's [`SweepPoint::from_memory`](crate::engine::SweepPoint::from_memory):
    /// any runner that executes the stream set `0..shots` — sequentially, on
    /// a thread pool, or adaptively batch by batch — reproduces the same
    /// failure count.
    pub fn run_stream<R>(
        &self,
        strategy: DecodingStrategy,
        base_seed: u64,
        stream: u64,
    ) -> ShotOutcome
    where
        R: Rng + SeedableRng,
    {
        let mut rng = R::seed_from_u64(crate::shot_stream_seed(base_seed, stream));
        self.run_shot(strategy, &mut rng)
    }

    /// Monte-Carlo estimate over all available cores
    /// ([`crate::run_shots_auto`]).  Each shot draws from its own RNG of
    /// type `R`, seeded from `base_seed` and a globally unique stream index:
    /// which *thread* executes a given stream varies with the worker-pool
    /// size, but the *set* of streams is always `0..shots`, so the failure
    /// count is reproducible across machines with any core count.
    pub fn estimate_parallel<R>(
        &self,
        shots: usize,
        strategy: DecodingStrategy,
        base_seed: u64,
    ) -> EstimateResult
    where
        R: Rng + SeedableRng,
    {
        let next_stream = std::sync::atomic::AtomicU64::new(0);
        let failures = crate::run_shots_auto(shots, |_, _| {
            let stream = next_stream.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.run_stream::<R>(strategy, base_seed, stream)
                .logical_failure
        });
        EstimateResult {
            shots,
            failures,
            rounds: self.config.effective_rounds(),
        }
    }

    /// Builds the bit-packed batch kernel for this experiment: 64 shots per
    /// machine word, sampled with its own group-level RNG discipline (see
    /// [`crate::PackedShotBatch`]).  The batch owns a clone of the
    /// experiment, so the scalar path and its warm decoder pool are
    /// untouched.
    pub fn packed<R>(&self, strategy: DecodingStrategy, base_seed: u64) -> crate::PackedShotBatch<R>
    where
        R: Rng + SeedableRng,
    {
        crate::PackedShotBatch::new(self.clone(), strategy, base_seed)
    }

    /// Monte-Carlo estimate through the packed batch kernel — the
    /// high-throughput counterpart of [`MemoryExperiment::estimate_parallel`].
    ///
    /// The packed path samples whole 64-lane groups from per-group RNG
    /// streams, so for a given `(base_seed, shots)` it is deterministic and
    /// machine-independent, but its failure set is *not* the per-shot
    /// stream set of the scalar path — pin packed against scalar with
    /// [`crate::PackedShotBatch::replay_lane_scalar`], which replays the
    /// packed noise realizations through the scalar decode machinery.
    pub fn estimate_packed<R>(
        &self,
        shots: usize,
        strategy: DecodingStrategy,
        base_seed: u64,
    ) -> EstimateResult
    where
        R: Rng + SeedableRng,
    {
        self.packed::<R>(strategy, base_seed)
            .estimate_parallel(shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn zero_noise_never_fails() {
        let exp = MemoryExperiment::new(MemoryExperimentConfig::new(3, 0.0)).unwrap();
        let mut r = rng(1);
        let est = exp.estimate(50, DecodingStrategy::MbbeFree, &mut r);
        assert_eq!(est.failures, 0);
        assert_eq!(est.logical_error_rate(), 0.0);
        assert_eq!(est.logical_error_rate_per_cycle(), 0.0);
    }

    #[test]
    fn shot_reports_detection_events() {
        let exp = MemoryExperiment::new(MemoryExperimentConfig::new(3, 0.05)).unwrap();
        let mut r = rng(2);
        let mut total_events = 0;
        for _ in 0..20 {
            total_events += exp
                .run_shot(DecodingStrategy::MbbeFree, &mut r)
                .num_detection_events;
        }
        assert!(total_events > 0, "5 % noise must produce detection events");
    }

    #[test]
    fn larger_distance_reduces_logical_error_rate_below_threshold() {
        // p = 0.8 % is far below the ~3 % threshold, so d = 5 must beat d = 3.
        let shots = 400;
        let p = 8e-3;
        let small = MemoryExperiment::new(MemoryExperimentConfig::new(3, p)).unwrap();
        let large = MemoryExperiment::new(MemoryExperimentConfig::new(5, p)).unwrap();
        let e_small = small.estimate(shots, DecodingStrategy::MbbeFree, &mut rng(3));
        let e_large = large.estimate(shots, DecodingStrategy::MbbeFree, &mut rng(4));
        assert!(
            e_large.logical_error_rate() <= e_small.logical_error_rate(),
            "d=5 ({}) should not be worse than d=3 ({})",
            e_large.logical_error_rate(),
            e_small.logical_error_rate()
        );
    }

    #[test]
    fn mbbe_increases_the_logical_error_rate() {
        let shots = 300;
        let p = 5e-3;
        let config =
            MemoryExperimentConfig::new(5, p).with_anomaly(AnomalyInjection::centered(2, 0.5));
        let exp = MemoryExperiment::new(config).unwrap();
        let free = exp.estimate(shots, DecodingStrategy::MbbeFree, &mut rng(5));
        let burst = exp.estimate(shots, DecodingStrategy::Blind, &mut rng(6));
        assert!(
            burst.logical_error_rate() > free.logical_error_rate(),
            "burst {} must exceed MBBE-free {}",
            burst.logical_error_rate(),
            free.logical_error_rate()
        );
    }

    #[test]
    fn anomaly_aware_decoding_not_worse_than_blind() {
        let shots = 300;
        let p = 5e-3;
        let config =
            MemoryExperimentConfig::new(5, p).with_anomaly(AnomalyInjection::centered(2, 0.5));
        let exp = MemoryExperiment::new(config).unwrap();
        let blind = exp.estimate(shots, DecodingStrategy::Blind, &mut rng(7));
        let aware = exp.estimate(shots, DecodingStrategy::AnomalyAware, &mut rng(7));
        assert!(
            aware.logical_error_rate() <= blind.logical_error_rate() + 0.05,
            "aware {} should not be much worse than blind {}",
            aware.logical_error_rate(),
            blind.logical_error_rate()
        );
    }

    #[test]
    fn estimate_merge_and_errors() {
        let a = EstimateResult {
            shots: 100,
            failures: 10,
            rounds: 5,
        };
        let b = EstimateResult {
            shots: 300,
            failures: 20,
            rounds: 5,
        };
        let m = a.merge(&b);
        assert_eq!(m.shots, 400);
        assert_eq!(m.failures, 30);
        assert!((m.logical_error_rate() - 0.075).abs() < 1e-12);
        assert!(m.standard_error() > 0.0 && m.standard_error() < 0.05);
        assert!(m.logical_error_rate_per_cycle() < m.logical_error_rate());
    }

    #[test]
    #[should_panic(expected = "different rounds")]
    fn merging_incompatible_estimates_panics() {
        let a = EstimateResult {
            shots: 1,
            failures: 0,
            rounds: 5,
        };
        let b = EstimateResult {
            shots: 1,
            failures: 0,
            rounds: 7,
        };
        let _ = a.merge(&b);
    }

    #[test]
    fn zero_base_rate_replays_identically_with_an_active_anomaly() {
        // Regression test for the rate-dependent draw-order bug: a
        // zero-rate qubit must still consume its per-cycle draw, so the
        // anomalous qubits land on the same stream positions whether the
        // base rate is 0 or (negligibly) positive.
        let anomaly = AnomalyInjection::centered(2, 0.5);
        let zero = MemoryExperiment::new(MemoryExperimentConfig::new(5, 0.0).with_anomaly(anomaly))
            .unwrap();
        let tiny =
            MemoryExperiment::new(MemoryExperimentConfig::new(5, 1e-12).with_anomaly(anomaly))
                .unwrap();
        for seed in 0..20u64 {
            let (hz, pz) = zero.sample_history(DecodingStrategy::Blind, &mut rng(seed));
            let (ht, pt) = tiny.sample_history(DecodingStrategy::Blind, &mut rng(seed));
            assert_eq!(hz, ht, "seed {seed}: histories must stay stream-aligned");
            assert_eq!(pz, pt, "seed {seed}");
            // the chip-path replay decodes the same shot bit-identically
            let a = zero.run_shot(DecodingStrategy::Blind, &mut rng(seed));
            let b = zero.run_shot_with(
                &[*zero.region().unwrap()],
                DecodingStrategy::Blind,
                &mut rng(seed),
            );
            assert_eq!(a, b, "seed {seed}");
        }
        // the burst is the only noise source, and it must actually fire
        let events: usize = (0..20u64)
            .map(|seed| {
                zero.sample_history(DecodingStrategy::Blind, &mut rng(seed))
                    .0
                    .num_detection_events()
            })
            .sum();
        assert!(
            events > 0,
            "a p_ano = 0.5 burst at p = 0 must produce events"
        );
    }

    #[test]
    fn region_is_centered_by_default() {
        let config =
            MemoryExperimentConfig::new(9, 1e-3).with_anomaly(AnomalyInjection::mcewen_default());
        let exp = MemoryExperiment::new(config).unwrap();
        let region = exp.region().unwrap();
        let grid = exp.code().grid_size();
        let center = region.center();
        assert!((center.row - grid / 2).abs() <= 1);
        assert!((center.col - grid / 2).abs() <= 1);
        assert_eq!(region.size(), 4);
        assert_eq!(region.anomalous_rate(), 0.5);
    }

    #[test]
    fn invalid_distance_is_rejected() {
        assert!(MemoryExperiment::new(MemoryExperimentConfig::new(1, 1e-3)).is_err());
    }

    #[test]
    fn matcher_backend_can_be_selected() {
        let config = MemoryExperimentConfig::new(3, 1e-2).with_matcher(MatcherKind::UnionFind);
        assert_eq!(config.decoder.matcher, MatcherKind::UnionFind);
        let exp = MemoryExperiment::new(config).unwrap();
        let est = exp.estimate(30, DecodingStrategy::MbbeFree, &mut rng(11));
        assert_eq!(est.shots, 30);
        assert!(est.logical_error_rate() <= 1.0);
    }

    #[test]
    fn parallel_estimate_is_deterministic_and_counts_all_shots() {
        let exp = MemoryExperiment::new(MemoryExperimentConfig::new(3, 2e-2)).unwrap();
        let a = exp.estimate_parallel::<ChaCha8Rng>(100, DecodingStrategy::MbbeFree, 7);
        let b = exp.estimate_parallel::<ChaCha8Rng>(100, DecodingStrategy::MbbeFree, 7);
        assert_eq!(a, b, "same seed must reproduce the same estimate");
        assert_eq!(a.shots, 100);
        assert_eq!(a.rounds, 3);
        let c = exp.estimate_parallel::<ChaCha8Rng>(100, DecodingStrategy::MbbeFree, 8);
        assert_eq!(c.shots, 100);
    }

    #[test]
    fn parallel_estimate_is_machine_independent() {
        // The parallel estimate seeds shots from a global stream counter, so
        // it must match a sequential replay of streams 0..shots regardless
        // of how many worker threads the machine provides.
        let exp = MemoryExperiment::new(MemoryExperimentConfig::new(3, 2e-2)).unwrap();
        let base_seed = 0xC0DEu64;
        let parallel =
            exp.estimate_parallel::<ChaCha8Rng>(80, DecodingStrategy::MbbeFree, base_seed);
        let sequential = (0..80u64)
            .filter(|&stream| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    base_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                exp.run_shot(DecodingStrategy::MbbeFree, &mut rng)
                    .logical_failure
            })
            .count();
        assert_eq!(parallel.failures, sequential);
    }

    #[test]
    fn run_shot_with_matches_run_shot_on_the_configured_region() {
        let config =
            MemoryExperimentConfig::new(5, 5e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
        let exp = MemoryExperiment::new(config).unwrap();
        let regions = [*exp.region().unwrap()];
        for strategy in [
            DecodingStrategy::MbbeFree,
            DecodingStrategy::Blind,
            DecodingStrategy::AnomalyAware,
        ] {
            for seed in 0..10u64 {
                let a = exp.run_shot(strategy, &mut rng(seed));
                let b = exp.run_shot_with(&regions, strategy, &mut rng(seed));
                assert_eq!(a, b, "{strategy:?} seed {seed}");
            }
        }
        // With no regions every strategy reduces to the MBBE-free shot.
        for seed in 0..10u64 {
            let free = exp.run_shot(DecodingStrategy::MbbeFree, &mut rng(seed));
            let empty = exp.run_shot_with(&[], DecodingStrategy::AnomalyAware, &mut rng(seed));
            assert_eq!(free, empty, "seed {seed}");
        }
    }

    #[test]
    fn weight_model_matches_strategy() {
        let config =
            MemoryExperimentConfig::new(5, 1e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
        let exp = MemoryExperiment::new(config).unwrap();
        assert!(!exp.weight_model(DecodingStrategy::Blind).is_anomaly_aware());
        assert!(exp
            .weight_model(DecodingStrategy::AnomalyAware)
            .is_anomaly_aware());
        assert!(!exp
            .weight_model(DecodingStrategy::MbbeFree)
            .is_anomaly_aware());
        // noise models: MBBE-free has no regions, the others have one
        assert!(exp
            .noise_model(DecodingStrategy::MbbeFree)
            .anomalies()
            .is_empty());
        assert_eq!(
            exp.noise_model(DecodingStrategy::Blind).anomalies().len(),
            1
        );
    }
}
