//! The bit-packed 64-shot batch sampling spine.
//!
//! One `u64` lane = 64 independent shots of the same sweep point.  The
//! packed path restates the scalar kernel
//! ([`MemoryExperiment::sample_history_with`]) as bitwise operations over
//! flat `u64` buffers:
//!
//! * per-qubit flip probabilities are resolved **once** from the
//!   [`q3de_noise::NoiseModel`] into a [`PackedBernoulli`] table (uniform
//!   vs anomalous partition, per round), instead of re-walking the region
//!   geometry per shot;
//! * X-component flips are sampled 64 shots at a time
//!   ([`PackedBernoulli::sample_u64`] consumes ~`popcount(threshold)`
//!   words per 64 lanes instead of 64 `f64` draws);
//! * parity checks and the final readout layer are XOR folds over the
//!   incident-edge flip words, accumulated into a [`SyndromeBatch`];
//! * only lanes whose window has a nonzero syndrome are decoded.  A silent
//!   window decodes to no correction, so a quiet lane fails iff its
//!   accumulated cut parity is odd — one AND-NOT over the cut-parity word
//!   handles all quiet lanes at once without touching the decoder.
//!
//! Eventful lanes additionally share a *verdict memo*: the decoded
//! correction's cut parity is a pure function of the lane's detection-event
//! pattern (the weight model is fixed per batch), so the batch caches
//! `detector bits → crosses_cut` and most eventful lanes at memory-regime
//! rates hit the cache instead of the matcher.
//!
//! # Seed schedule
//!
//! The packed path deliberately does **not** reproduce the scalar per-shot
//! RNG streams — doing so would spend more time seeding and drawing than
//! the scalar path itself.  Instead each 64-lane group `g` draws from one
//! RNG seeded with [`shot_stream_seed`]`(base_seed, g | 1 << 63)` (the high
//! bit keeps group streams disjoint from scalar shot streams).  Estimates
//! are therefore deterministic and machine-independent for a given
//! `(base_seed, shots)`, and statistically equivalent to — but not
//! shot-for-shot identical with — the scalar estimate.  The differential
//! suite pins correctness the stronger way: [`PackedShotBatch::replay_lane_scalar`]
//! replays the *identical* packed-sampled noise realization of any lane
//! through the scalar decode machinery, and the failure verdicts must
//! match bit-for-bit.

use crate::memory::{DecodingStrategy, EstimateResult, MemoryExperiment};
use crate::shot_stream_seed;
use q3de_decoder::{ContextPool, DetectionEvent, SyndromeBatch, WeightModel};
use q3de_noise::NoiseModel;
use rand::{PackedBernoulli, Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::marker::PhantomData;
use std::sync::RwLock;

/// Verdict-memo size cap: at d ≤ 7 the live detector-pattern space is far
/// smaller, and a runaway workload (deep windows at high rates) must not
/// grow the map without bound.  Beyond the cap the batch still decodes
/// correctly — it just stops inserting.
const VERDICT_MEMO_CAP: usize = 1 << 20;

/// Multiply-mix hasher for the verdict memo.  Signature keys are one or
/// two `u64` words and the memo hit is on the per-eventful-lane hot path,
/// where the default SipHash costs more than the rest of the lookup.  Not
/// collision-resistant against adversarial keys, which is fine for an
/// in-process bounded cache of locally sampled syndromes.
#[derive(Default)]
struct MemoHasher(u64);

impl MemoHasher {
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for MemoHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, word: u64) {
        self.mix(word);
    }

    fn write_usize(&mut self, word: usize) {
        self.mix(word as u64);
    }
}

type VerdictMemo = HashMap<Box<[u64]>, bool, BuildHasherDefault<MemoHasher>>;

/// A bit-packed Monte-Carlo kernel simulating 64 shots of one memory-sweep
/// point per `u64` word.
///
/// Construction resolves everything per-shot work used to recompute: the
/// per-qubit flip probability of every `(round, qubit)` pair becomes a
/// [`PackedBernoulli`], and the decoder weight model is fixed for the
/// batch.  [`PackedShotBatch::run_group`] then produces the 64-lane
/// failure mask of group `g`; [`PackedShotBatch::estimate`] and
/// [`PackedShotBatch::estimate_parallel`] fold masks over
/// `0..ceil(shots / 64)` groups, masking off the lanes past `shots` in the
/// tail group (the tail group always *samples* all 64 lanes, so a lane's
/// outcome never depends on the requested shot count).
pub struct PackedShotBatch<R> {
    experiment: MemoryExperiment,
    base_seed: u64,
    rounds: usize,
    /// `rounds × num_edges` flip samplers for the data qubits, round-major
    /// in the edge order of the matching graph.
    edge_samplers: Vec<PackedBernoulli>,
    /// `rounds × num_nodes` flip samplers for the ancilla qubits,
    /// round-major in node order.
    node_samplers: Vec<PackedBernoulli>,
    weights: WeightModel,
    decoders: ContextPool,
    verdicts: RwLock<VerdictMemo>,
    _rng: PhantomData<fn() -> R>,
}

impl<R> PackedShotBatch<R>
where
    R: Rng + SeedableRng,
{
    /// Builds the packed kernel for `experiment` under the given strategy:
    /// the noise model is flattened into per-`(round, qubit)` flip
    /// samplers and the strategy's weight model is installed for every
    /// decode of the batch.
    pub fn new(experiment: MemoryExperiment, strategy: DecodingStrategy, base_seed: u64) -> Self {
        let noise = experiment.noise_model(strategy);
        let weights = experiment.weight_model(strategy);
        let graph = experiment.graph();
        let rounds = experiment.config().effective_rounds();
        let flip = |coord, cycle| {
            PackedBernoulli::new(NoiseModel::flip_probability(noise.rate_at(coord, cycle)))
        };
        let mut edge_samplers = Vec::with_capacity(rounds * graph.num_edges());
        let mut node_samplers = Vec::with_capacity(rounds * graph.num_nodes());
        for t in 0..rounds as u64 {
            edge_samplers.extend(graph.edges().iter().map(|e| flip(e.qubit, t)));
            node_samplers.extend(graph.nodes().iter().map(|&n| flip(n, t)));
        }
        let decoders = ContextPool::new(experiment.config().decoder);
        Self {
            experiment,
            base_seed,
            rounds,
            edge_samplers,
            node_samplers,
            weights,
            decoders,
            verdicts: RwLock::new(VerdictMemo::default()),
            _rng: PhantomData,
        }
    }

    /// The sweep-level base seed the group streams derive from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Number of noisy rounds per shot.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The RNG seed of 64-lane group `group` — [`shot_stream_seed`] with
    /// the high stream bit set, keeping packed group streams disjoint from
    /// the scalar per-shot streams of the same `base_seed`.
    pub fn group_seed(&self, group: u64) -> u64 {
        shot_stream_seed(self.base_seed, group | 1 << 63)
    }

    /// Samples the noise realization of group `group` and returns the
    /// packed syndrome stream plus the accumulated cut-parity word (bit
    /// `lane` = the lane's actual error crosses the homological cut).
    ///
    /// The per-group sampling schedule mirrors the scalar kernel: per
    /// round, data qubits in edge order, then one ancilla sample per node;
    /// then the final perfect readout layer.
    pub fn sample_group(&self, group: u64) -> (SyndromeBatch, u64) {
        let graph = self.experiment.graph();
        let num_edges = graph.num_edges();
        let num_nodes = graph.num_nodes();
        let mut rng = R::seed_from_u64(self.group_seed(group));

        let mut flipped = vec![0u64; num_edges];
        let mut batch = SyndromeBatch::new(num_nodes);
        for t in 0..self.rounds {
            for (word, sampler) in flipped
                .iter_mut()
                .zip(&self.edge_samplers[t * num_edges..(t + 1) * num_edges])
            {
                *word ^= sampler.sample_u64(&mut rng);
            }
            let layer = batch.push_blank_layer();
            for (node, slot) in layer.iter_mut().enumerate() {
                let mut parity = 0u64;
                for &e in graph.incident_edges(node) {
                    parity ^= flipped[e];
                }
                parity ^= self.node_samplers[t * num_nodes + node].sample_u64(&mut rng);
                *slot = parity;
            }
        }
        let final_layer = batch.push_blank_layer();
        for (node, slot) in final_layer.iter_mut().enumerate() {
            let mut parity = 0u64;
            for &e in graph.incident_edges(node) {
                parity ^= flipped[e];
            }
            *slot = parity;
        }

        let mut cut = 0u64;
        for &e in graph.cut_edges() {
            cut ^= flipped[e];
        }
        (batch, cut)
    }

    /// Runs 64-lane group `group` and returns its failure mask: bit `lane`
    /// is set iff shot `group · 64 + lane` ends in a logical failure.
    ///
    /// Quiet lanes (no detection event in the window) skip the decoder —
    /// no correction is applied, so the failure bit is the lane's cut
    /// parity.  Eventful lanes decode through the shared verdict memo.
    pub fn run_group(&self, group: u64) -> u64 {
        let (batch, cut) = self.sample_group(group);
        // Every detector word is computed exactly once into a flat buffer;
        // the active mask and each eventful lane's signature/events are bit
        // extractions over it instead of per-lane XOR re-derivations.
        let mut detectors = Vec::new();
        batch.detector_words(&mut detectors);
        let active = detectors.iter().fold(0u64, |mask, &word| mask | word);
        // quiet-lane fast path: failure ⟺ the uncorrected error crosses the cut
        let mut failures = cut & !active;

        let mut signature = Vec::new();
        let mut events = Vec::new();
        let mut lanes = active;
        while lanes != 0 {
            let lane = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            let crosses =
                self.lane_crosses_cut(&batch, &detectors, lane, &mut signature, &mut events);
            if crosses != ((cut >> lane) & 1 == 1) {
                failures |= 1 << lane;
            }
        }
        failures
    }

    /// The decoded correction's cut parity for one eventful lane, through
    /// the verdict memo.  Exact, not approximate: the decode outcome is a
    /// pure function of the detection-event pattern once the graph and
    /// weight model are fixed, and both are fixed for the batch's lifetime.
    ///
    /// `detectors` is the group's flat detector-word buffer
    /// ([`SyndromeBatch::detector_words`]); the lane's memo signature and
    /// detection events are extracted from it in the same `(layer, node)`
    /// scan order as [`SyndromeBatch::lane_signature`] and
    /// [`SyndromeBatch::lane_events`].
    fn lane_crosses_cut(
        &self,
        batch: &SyndromeBatch,
        detectors: &[u64],
        lane: usize,
        signature: &mut Vec<u64>,
        events: &mut Vec<DetectionEvent>,
    ) -> bool {
        signature.clear();
        signature.resize(detectors.len().div_ceil(64), 0);
        for (bit, word) in detectors.iter().enumerate() {
            signature[bit / 64] |= ((word >> lane) & 1) << (bit % 64);
        }
        if let Some(&verdict) = self
            .verdicts
            .read()
            .expect("verdict memo poisoned")
            .get(signature.as_slice())
        {
            return verdict;
        }
        events.clear();
        let num_nodes = batch.num_nodes();
        for (bit, word) in detectors.iter().enumerate() {
            if (word >> lane) & 1 == 1 {
                events.push(DetectionEvent {
                    layer: bit / num_nodes,
                    node: bit % num_nodes,
                });
            }
        }
        let outcome = self.decoders.with(|context| {
            context.decode_events(
                self.experiment.graph(),
                batch.num_layers(),
                std::mem::take(events),
                &self.weights,
            )
        });
        let crosses = outcome.correction_crosses_cut();
        let mut memo = self.verdicts.write().expect("verdict memo poisoned");
        if memo.len() < VERDICT_MEMO_CAP {
            memo.insert(signature.clone().into_boxed_slice(), crosses);
        }
        crosses
    }

    /// The valid-lane mask of group `group` under a total of `shots` shots:
    /// all ones except in the tail group, where lanes past `shots` are
    /// masked off.
    fn valid_mask(shots: usize, group: u64) -> u64 {
        let first = group as usize * 64;
        let live = shots.saturating_sub(first).min(64);
        if live == 64 {
            u64::MAX
        } else {
            (1u64 << live) - 1
        }
    }

    /// Sequential Monte-Carlo estimate over `shots` shots (groups
    /// `0..ceil(shots / 64)`, tail lanes masked).
    pub fn estimate(&self, shots: usize) -> EstimateResult {
        let groups = shots.div_ceil(64) as u64;
        let mut failures = 0usize;
        for group in 0..groups {
            failures +=
                (self.run_group(group) & Self::valid_mask(shots, group)).count_ones() as usize;
        }
        EstimateResult {
            shots,
            failures,
            rounds: self.rounds,
        }
    }

    /// Parallel Monte-Carlo estimate over `shots` shots.  Groups are dealt
    /// to workers through a global counter, so the failure count is
    /// identical to [`PackedShotBatch::estimate`] for any thread count.
    pub fn estimate_parallel(&self, shots: usize) -> EstimateResult {
        let groups = shots.div_ceil(64);
        let next_group = std::sync::atomic::AtomicU64::new(0);
        let failures = crate::run_shots_fold_auto(
            groups,
            0usize,
            |_, _, acc| {
                let group = next_group.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                *acc +=
                    (self.run_group(group) & Self::valid_mask(shots, group)).count_ones() as usize;
            },
            |a, b| a + b,
        );
        EstimateResult {
            shots,
            failures,
            rounds: self.rounds,
        }
    }

    /// Replays packed shot `stream` (lane `stream % 64` of group
    /// `stream / 64`) through the **scalar** decode machinery: the lane's
    /// packed-sampled syndrome stream is unpacked into a
    /// [`q3de_decoder::SyndromeHistory`] and decoded exactly as
    /// [`MemoryExperiment::run_shot`] would decode it.
    ///
    /// This is the differential oracle: for every stream,
    /// `replay_lane_scalar(stream)` must equal bit `stream % 64` of
    /// `run_group(stream / 64)` — same noise realization, two independent
    /// parity/decode paths.
    pub fn replay_lane_scalar(&self, stream: u64) -> bool {
        let (batch, cut) = self.sample_group(stream / 64);
        let lane = (stream % 64) as usize;
        let history = batch.lane_history(lane);
        let error_cut_parity = (cut >> lane) & 1 == 1;
        let outcome = self
            .decoders
            .with(|context| context.decode(self.experiment.graph(), &history, &self.weights));
        outcome.is_logical_failure(error_cut_parity)
    }
}

impl<R> crate::engine::PackedShotKernel for PackedShotBatch<R>
where
    R: Rng + SeedableRng,
{
    fn run_group(&self, group: u64) -> u64 {
        PackedShotBatch::run_group(self, group)
    }
}

impl<R> std::fmt::Debug for PackedShotBatch<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedShotBatch")
            .field("config", self.experiment.config())
            .field("base_seed", &self.base_seed)
            .field("rounds", &self.rounds)
            .field(
                "memoized_verdicts",
                &self.verdicts.read().expect("verdict memo poisoned").len(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{AnomalyInjection, MemoryExperimentConfig};
    use rand_chacha::ChaCha8Rng;

    fn batch(
        config: MemoryExperimentConfig,
        strategy: DecodingStrategy,
        seed: u64,
    ) -> PackedShotBatch<ChaCha8Rng> {
        MemoryExperiment::new(config)
            .unwrap()
            .packed::<ChaCha8Rng>(strategy, seed)
    }

    #[test]
    fn zero_noise_never_fails() {
        let b = batch(
            MemoryExperimentConfig::new(3, 0.0),
            DecodingStrategy::MbbeFree,
            1,
        );
        let est = b.estimate(300);
        assert_eq!(est.failures, 0);
        assert_eq!(est.shots, 300);
    }

    #[test]
    fn estimates_are_deterministic_and_thread_independent() {
        let config = MemoryExperimentConfig::new(3, 2e-2);
        let a = batch(config, DecodingStrategy::MbbeFree, 7).estimate(200);
        let b = batch(config, DecodingStrategy::MbbeFree, 7).estimate_parallel(200);
        assert_eq!(a, b, "sequential and parallel must agree");
        let c = batch(config, DecodingStrategy::MbbeFree, 8).estimate(200);
        assert_eq!(c.shots, 200);
    }

    #[test]
    fn tail_lanes_do_not_change_earlier_outcomes() {
        // shot counts that straddle a group boundary: the first 64 shots'
        // failure bits must be identical whether or not a tail follows.
        let config = MemoryExperimentConfig::new(3, 2e-2);
        let b = batch(config, DecodingStrategy::MbbeFree, 3);
        let exact = b.estimate(64).failures;
        let with_tail = b.estimate(130).failures;
        let tail_only: usize = (64..130)
            .filter(|&s| b.replay_lane_scalar(s as u64))
            .count();
        assert_eq!(with_tail, exact + tail_only);
    }

    #[test]
    fn packed_failure_rate_is_statistically_sane() {
        // d = 3 at p = 2e-2 has a per-shot logical failure rate around a
        // few percent — the packed estimate must land in that ballpark.
        let config = MemoryExperimentConfig::new(3, 2e-2);
        let est = batch(config, DecodingStrategy::MbbeFree, 11).estimate(6400);
        let rate = est.logical_error_rate();
        assert!(
            rate > 0.001 && rate < 0.2,
            "implausible packed failure rate {rate}"
        );
    }

    #[test]
    fn quiet_group_at_tiny_rate_mostly_skips_the_decoder() {
        let config = MemoryExperimentConfig::new(3, 1e-4);
        let b = batch(config, DecodingStrategy::MbbeFree, 5);
        let (sb, _) = b.sample_group(0);
        assert!(
            sb.active_mask().count_ones() < 32,
            "at p = 1e-4 most lanes must be quiet"
        );
    }

    #[test]
    fn burst_strategies_share_noise_but_not_weights() {
        let config =
            MemoryExperimentConfig::new(5, 5e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
        let blind = batch(config, DecodingStrategy::Blind, 9);
        let aware = batch(config, DecodingStrategy::AnomalyAware, 9);
        // identical noise realization (same samplers, same group seed) …
        assert_eq!(blind.sample_group(0), aware.sample_group(0));
        // … and the burst raises the failure rate over MBBE-free
        let free = batch(config, DecodingStrategy::MbbeFree, 9).estimate(1280);
        let burst = blind.estimate(1280);
        assert!(
            burst.failures > free.failures,
            "burst {} must exceed MBBE-free {}",
            burst.failures,
            free.failures
        );
    }

    #[test]
    fn valid_mask_covers_partial_tails() {
        type B = PackedShotBatch<ChaCha8Rng>;
        assert_eq!(B::valid_mask(130, 0), u64::MAX);
        assert_eq!(B::valid_mask(130, 1), u64::MAX);
        assert_eq!(B::valid_mask(130, 2), 0b11);
        assert_eq!(B::valid_mask(64, 0), u64::MAX);
        assert_eq!(B::valid_mask(1, 0), 1);
    }
}
