//! Deterministic syndrome-window streams for the decode service.
//!
//! A long-running decode server consumes *windows* — a block of syndrome
//! layers plus the anomalous regions the control plane believes are active
//! — rather than whole Monte-Carlo shots.  [`WindowSource`] turns a
//! [`MemoryExperiment`] into exactly that: window `w` of a tenant's stream
//! is sampled from an RNG seeded by
//! [`shot_stream_seed`](crate::shot_stream_seed)`(base_seed, w)`, the same
//! seed schedule every sweep kernel uses, so a window's contents depend
//! only on `(base_seed, w)` — never on which thread, tenant queue or
//! process asks for it.  Two sources built from the same configuration
//! produce bit-identical streams, which is what makes service-level
//! latency experiments (solo tenant vs contended shard) comparable: the
//! *work* is pinned, only the scheduling varies.
//!
//! Each window independently suffers a cosmic-ray strike with probability
//! `strike_rate` (the first RNG draw of the window, so quiet and struck
//! windows consume identically-seeded streams).  A struck window samples
//! under the configured anomalous region and carries that region along, so
//! the consumer decodes it with the expensive two-pass rollback flow —
//! exactly the load spike the Q3DE paper says a real-time decoder must
//! absorb.

use crate::memory::{DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use q3de_decoder::SyndromeHistory;
use q3de_lattice::{LatticeError, MatchingGraph};
use q3de_noise::AnomalousRegion;
use rand::{Rng, SeedableRng};

/// One syndrome window of a tenant's stream, ready to submit to a decode
/// service: the sampled layers, the regions a detector would report for
/// it, and the ground-truth cut parity (kept so benches can tally logical
/// failures without re-deriving them).
#[derive(Debug, Clone)]
pub struct StreamWindow {
    /// Stream index of the window within its tenant's stream.
    pub stream: u64,
    /// The sampled syndrome layers (noisy rounds + final perfect readout).
    pub history: SyndromeHistory,
    /// Anomalous regions active during the window — empty for quiet
    /// windows, the strike region for struck ones.  A consumer decodes
    /// non-empty windows with the two-pass rollback flow.
    pub regions: Vec<AnomalousRegion>,
    /// Absolute code cycle of the window's first layer.
    pub window_start_cycle: u64,
    /// Ground-truth logical cut parity of the accumulated error.
    pub error_cut_parity: bool,
}

impl StreamWindow {
    /// Whether the window was struck by a cosmic ray.
    pub fn struck(&self) -> bool {
        !self.regions.is_empty()
    }
}

/// A deterministic, thread-independent source of syndrome windows — one
/// tenant's input stream to a decode service.
///
/// Window `w` is sampled from an RNG seeded by
/// [`shot_stream_seed`](crate::shot_stream_seed)`(base_seed, w)`, so the
/// stream is deterministic, order-independent and identical on any thread
/// or machine — solo and contended service runs see bit-identical work.
#[derive(Debug, Clone)]
pub struct WindowSource {
    experiment: MemoryExperiment,
    strike_rate: f64,
    base_seed: u64,
}

impl WindowSource {
    /// Builds a source over the given experiment configuration.  The
    /// configuration must carry an [`AnomalyInjection`](crate::AnomalyInjection)
    /// when `strike_rate > 0` — it defines the region struck windows
    /// sample under.
    ///
    /// # Errors
    ///
    /// Returns an error if the code distance is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `strike_rate` is outside `[0, 1]`, or if it is positive
    /// while the configuration has no anomaly to inject.
    pub fn new(
        config: MemoryExperimentConfig,
        strike_rate: f64,
        base_seed: u64,
    ) -> Result<Self, LatticeError> {
        assert!(
            (0.0..=1.0).contains(&strike_rate),
            "strike_rate must be a probability, got {strike_rate}"
        );
        let experiment = MemoryExperiment::new(config)?;
        assert!(
            strike_rate == 0.0 || experiment.region().is_some(),
            "a positive strike_rate needs an anomaly injection in the config"
        );
        Ok(Self {
            experiment,
            strike_rate,
            base_seed,
        })
    }

    /// The underlying experiment (patch geometry, rates, decoder config).
    pub fn experiment(&self) -> &MemoryExperiment {
        &self.experiment
    }

    /// The matching graph every window of this stream decodes over — the
    /// exact graph the windows were sampled against.
    pub fn graph(&self) -> &MatchingGraph {
        self.experiment.graph()
    }

    /// The per-window strike probability.
    pub fn strike_rate(&self) -> f64 {
        self.strike_rate
    }

    /// Number of layers each window carries (noisy rounds + final
    /// readout).
    pub fn window_layers(&self) -> usize {
        self.experiment.config().effective_rounds() + 1
    }

    /// Samples window `stream` of the stream.  Deterministic in
    /// `(base_seed, stream)`; any subset of windows can be generated in any
    /// order on any thread.
    pub fn window<R>(&self, stream: u64) -> StreamWindow
    where
        R: Rng + SeedableRng,
    {
        let mut rng = R::seed_from_u64(crate::shot_stream_seed(self.base_seed, stream));
        // One strike draw per window, consumed unconditionally so quiet
        // and struck windows stay on the same per-window RNG schedule.
        let struck = rng.gen::<f64>() < self.strike_rate;
        let strategy = if struck {
            DecodingStrategy::AnomalyAware
        } else {
            DecodingStrategy::MbbeFree
        };
        let (history, error_cut_parity) = self.experiment.sample_history(strategy, &mut rng);
        let regions = if struck {
            vec![*self.experiment.region().expect("checked in new()")]
        } else {
            Vec::new()
        };
        StreamWindow {
            stream,
            history,
            regions,
            window_start_cycle: stream * self.window_layers() as u64,
            error_cut_parity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnomalyInjection;
    use rand_chacha::ChaCha8Rng;

    fn source(strike_rate: f64, seed: u64) -> WindowSource {
        let config =
            MemoryExperimentConfig::new(5, 5e-3).with_anomaly(AnomalyInjection::centered(2, 0.5));
        WindowSource::new(config, strike_rate, seed).unwrap()
    }

    #[test]
    fn windows_are_deterministic_and_order_independent() {
        let a = source(0.3, 0xFEED);
        let b = source(0.3, 0xFEED);
        // Generate in different orders; every window must match exactly.
        for stream in [5u64, 0, 3, 7, 1] {
            let wa = a.window::<ChaCha8Rng>(stream);
            let wb = b.window::<ChaCha8Rng>(stream);
            assert_eq!(wa.stream, stream);
            assert_eq!(wa.history.num_layers(), a.window_layers());
            assert_eq!(wa.error_cut_parity, wb.error_cut_parity);
            assert_eq!(wa.regions, wb.regions);
            assert_eq!(
                wa.history.detection_events(),
                wb.history.detection_events(),
                "window {stream} must be bit-identical across sources"
            );
        }
    }

    #[test]
    fn strike_rate_controls_the_struck_fraction() {
        let never = source(0.0, 1);
        let always = source(1.0, 1);
        let sometimes = source(0.5, 1);
        let mut struck = 0usize;
        for stream in 0..40u64 {
            assert!(!never.window::<ChaCha8Rng>(stream).struck());
            assert!(always.window::<ChaCha8Rng>(stream).struck());
            if sometimes.window::<ChaCha8Rng>(stream).struck() {
                struck += 1;
            }
        }
        assert!(
            (5..=35).contains(&struck),
            "0.5 strike rate hit {struck}/40 windows"
        );
    }

    #[test]
    fn struck_windows_carry_the_injected_region() {
        let src = source(1.0, 2);
        let window = src.window::<ChaCha8Rng>(0);
        assert_eq!(window.regions.len(), 1);
        assert_eq!(&window.regions[0], src.experiment().region().unwrap());
        assert_eq!(window.window_start_cycle, 0);
        assert_eq!(
            src.window::<ChaCha8Rng>(3).window_start_cycle,
            3 * src.window_layers() as u64
        );
    }

    #[test]
    fn seeds_shift_the_stream() {
        let a = source(0.5, 10);
        let b = source(0.5, 11);
        let differs = (0..10u64).any(|s| {
            let (wa, wb) = (a.window::<ChaCha8Rng>(s), b.window::<ChaCha8Rng>(s));
            wa.history.detection_events() != wb.history.detection_events()
        });
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    #[should_panic(expected = "needs an anomaly injection")]
    fn positive_strike_rate_without_anomaly_is_rejected() {
        let _ = WindowSource::new(MemoryExperimentConfig::new(3, 1e-3), 0.5, 0);
    }
}
