//! Monte-Carlo quantum-memory simulation with MBBE injection.
//!
//! This crate reproduces the numerical methodology of Sec. VII-A of the
//! paper:
//!
//! * stochastic Pauli noise is injected at the beginning of every code cycle
//!   on data **and** ancilla qubits (`X`, `Y`, `Z` each with probability
//!   `p/2`, or `p_ano/2` inside an anomalous region),
//! * logical error rates are measured as the logical Pauli-`X` failure
//!   probability of a `d`-cycle idling (memory) experiment followed by a
//!   perfect readout round,
//! * the decoder treats the `X` and `Z` sectors independently,
//! * estimates are Monte-Carlo averages over many shots.
//!
//! The three curves of Figs. 3 and 8 correspond to the three
//! [`DecodingStrategy`] variants: `MbbeFree` (no anomaly injected),
//! `Blind` (anomaly injected, decoder unaware — "without rollback") and
//! `AnomalyAware` (anomaly injected and known to the decoder — "with
//! rollback").
//!
//! [`ChipMemoryExperiment`] lifts the memory experiment to a chip of `N`
//! patches: strikes are placed in chip coordinates (they may straddle patch
//! boundaries), each patch runs on its own reproducible RNG stream, and a
//! chip shot fails when any patch fails — the system failure criterion
//! behind the `fig_system` sweep.
//!
//! # Example
//!
//! ```
//! use q3de_sim::{MemoryExperiment, MemoryExperimentConfig, DecodingStrategy};
//! use rand::SeedableRng;
//!
//! let config = MemoryExperimentConfig::new(3, 1e-2);
//! let experiment = MemoryExperiment::new(config)?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let estimate = experiment.estimate(200, DecodingStrategy::MbbeFree, &mut rng);
//! assert!(estimate.logical_error_rate() < 0.5);
//! # Ok::<(), q3de_lattice::LatticeError>(())
//! ```

#![deny(missing_docs)]

pub mod engine;

mod chip;
mod detection_experiment;
mod memory;
mod packed;
mod parallel;
mod stream;

pub use chip::{
    chip_patch_seed, ChipEstimate, ChipMemoryExperiment, ChipMemoryExperimentConfig,
    ChipStrikePolicy,
};
pub use detection_experiment::{DetectionExperiment, DetectionExperimentConfig, DetectionTrial};
pub use engine::{
    write_atomic, EngineError, PackedShotKernel, PointReport, ShotKernel, SweepConfig, SweepPoint,
    SweepReport, SweepRunner,
};
pub use memory::{
    AnomalyInjection, DecodingStrategy, EstimateResult, MemoryExperiment, MemoryExperimentConfig,
    ShotOutcome,
};
pub use packed::PackedShotBatch;
pub use parallel::{
    run_shots_auto, run_shots_fold, run_shots_fold_auto, run_shots_parallel, shot_stream_seed,
};
pub use stream::{StreamWindow, WindowSource};
