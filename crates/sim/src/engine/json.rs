//! A minimal self-contained JSON value, parser and writer.
//!
//! The build environment is offline (no `serde`), so the engine's
//! checkpoint files and `bench_report.json` artifacts are read and written
//! through this hand-rolled implementation.  It supports the full JSON
//! grammar the engine emits: objects, arrays, strings (with escapes),
//! finite numbers, booleans and `null`.  Object key order is preserved, so
//! writing is deterministic.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also written for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.  Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number in
    /// the exactly-representable range.
    ///
    /// Only values below `2^53` qualify: above that, `f64` cannot represent
    /// every integer, so a parsed number no longer identifies one unique
    /// integer (and `u64::MAX as f64` rounds *up* to `2^64`, which a bare
    /// `<= u64::MAX as f64` bound would wrongly accept before the `as usize`
    /// cast saturated it).  The value must also fit `usize`, which is
    /// checked precisely via `try_from` so 32-bit targets reject rather
    /// than truncate.
    pub fn as_usize(&self) -> Option<usize> {
        const TWO_POW_53: f64 = 9_007_199_254_740_992.0;
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x < TWO_POW_53 => {
                // x < 2^53 with zero fraction is exactly representable, so
                // the u64 cast is lossless; the usize conversion is the
                // precise platform-width check.
                usize::try_from(*x as u64).ok()
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Checks the `schema_version` field of a JSON artifact: it must be
/// present and equal to `expected`.  Every engine artifact (reports,
/// checkpoints, shard plans, tally deltas) carries this field so a parser
/// from a different major refuses the document with a clear error instead
/// of silently misreading it; `what` names the artifact in that error.
///
/// # Errors
///
/// Returns a message naming the artifact, the found version (or its
/// absence) and the supported one.
pub fn check_schema_version(value: &JsonValue, expected: u64, what: &str) -> Result<(), String> {
    match value.get("schema_version").and_then(JsonValue::as_usize) {
        Some(found) if found as u64 == expected => Ok(()),
        Some(found) => Err(format!(
            "unsupported {what} schema version {found} (this build reads version {expected})"
        )),
        None => Err(format!(
            "{what} carries no schema version (this build reads version {expected})"
        )),
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(x) => write_number(f, *x),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a number: integral values without a decimal point, non-finite
/// values as `null` (JSON has no NaN/∞).
fn write_number(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        return f.write_str("null");
    }
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        write!(f, "{:.0}", x)
    } else {
        // `{:e}` round-trips through `f64::from_str` and keeps tiny rates
        // compact.
        write!(f, "{x:e}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek();
                    self.pos += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Lone surrogates degrade to the replacement
                            // character; the engine never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // self.pos is just past the 'u'
        let start = self.pos;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        JsonValue::parse(&v.to_string()).expect("writer output must parse")
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Number(0.0),
            JsonValue::Number(400.0),
            JsonValue::Number(-17.0),
            JsonValue::Number(1.25e-6),
            JsonValue::Number(0.1),
            JsonValue::String("a \"quoted\"\nline\t\\".into()),
            JsonValue::String("unicode: é λ ✓".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn integral_numbers_are_written_without_a_decimal_point() {
        assert_eq!(JsonValue::Number(400.0).to_string(), "400");
        assert_eq!(JsonValue::Number(-3.0).to_string(), "-3");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = JsonValue::Object(vec![
            ("version".into(), JsonValue::Number(1.0)),
            (
                "points".into(),
                JsonValue::Array(vec![
                    JsonValue::Object(vec![
                        ("id".into(), JsonValue::String("fig3/d=5".into())),
                        ("shots".into(), JsonValue::Number(400.0)),
                        ("rate".into(), JsonValue::Number(0.0075)),
                        ("converged".into(), JsonValue::Bool(false)),
                    ]),
                    JsonValue::Null,
                ]),
            ),
            ("empty".into(), JsonValue::Array(vec![])),
            ("nothing".into(), JsonValue::Object(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = JsonValue::parse(r#"{"a": {"b": [1, 2.5, "x", true]}, "n": null}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_array().unwrap()[0].as_usize(), Some(1));
        assert_eq!(arr.as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(arr.as_array().unwrap()[1].as_usize(), None);
        assert_eq!(arr.as_array().unwrap()[2].as_str(), Some("x"));
        assert_eq!(arr.as_array().unwrap()[3].as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn as_usize_is_bounded_to_the_exact_integer_range() {
        const TWO_POW_53: f64 = 9_007_199_254_740_992.0;
        // In range: exact integers round-trip through text and back.
        for n in [0u64, 1, 400, (1 << 53) - 1] {
            let v = JsonValue::Number(n as f64);
            assert_eq!(v.as_usize(), Some(n as usize), "{n}");
            assert_eq!(roundtrip(&v).as_usize(), Some(n as usize), "{n}");
        }
        // Out of range or non-integral: every ambiguous value is rejected
        // instead of silently saturated/truncated.  `u64::MAX as f64` is
        // the historical bug: it rounds up to 2^64, which the old
        // `<= u64::MAX as f64` bound accepted.
        for x in [
            TWO_POW_53,
            TWO_POW_53 * 2.0,
            u64::MAX as f64,
            1e300,
            -1.0,
            0.5,
            f64::INFINITY,
            f64::NAN,
        ] {
            assert_eq!(JsonValue::Number(x).as_usize(), None, "{x}");
        }
        assert_eq!(JsonValue::String("3".into()).as_usize(), None);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"k\" : \"\\u0041\\n\" , \"l\" : [ ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("A\n"));
        assert_eq!(v.get("l").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn schema_version_checks_name_the_artifact_and_versions() {
        let good = JsonValue::parse(r#"{"schema_version": 2}"#).unwrap();
        assert_eq!(check_schema_version(&good, 2, "report"), Ok(()));
        let newer = JsonValue::parse(r#"{"schema_version": 3}"#).unwrap();
        let err = check_schema_version(&newer, 2, "report").unwrap_err();
        assert!(
            err.contains("report") && err.contains('3') && err.contains('2'),
            "{err}"
        );
        let missing = JsonValue::parse(r#"{"version": 2}"#).unwrap();
        let err = check_schema_version(&missing, 2, "checkpoint").unwrap_err();
        assert!(err.contains("no schema version"), "{err}");
        let non_integer = JsonValue::parse(r#"{"schema_version": "2"}"#).unwrap();
        assert!(check_schema_version(&non_integer, 2, "plan").is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "\"open",
            "1 2",
            "{\"a\":}",
            "--3",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
