//! Sweep checkpoints: partial tallies persisted as JSON.
//!
//! The [`SweepRunner`](super::SweepRunner) writes a checkpoint every time a
//! point completes a scheduling block, so a killed sweep loses at most the
//! in-flight block of each point.  Checkpointed tallies always cover the
//! contiguous stream prefix `0..shots`, which is what makes a resumed sweep
//! *bit-identical* to an uninterrupted one: the resumed run simply executes
//! the remaining streams.

use std::path::Path;

use super::json::JsonValue;
use super::EngineError;

/// The schema version written to (and required of) checkpoint files.
/// Version 2 renamed the field itself from `version` to `schema_version`,
/// aligning checkpoints with every other engine artifact; version-1 files
/// are refused with a clear error (re-run the sweep rather than guess at a
/// silent migration of statistics).
pub const CHECKPOINT_VERSION: usize = 2;

/// One point's committed tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPoint {
    /// The sweep point's stable identifier.
    pub id: String,
    /// Shots completed — always a block boundary, i.e. the tally covers
    /// exactly the streams `0..shots`.
    pub shots: usize,
    /// Logical failures among those shots.
    pub failures: usize,
}

/// A persisted sweep state: one committed tally per point plus the sweep
/// fingerprint that guards against resuming with incompatible settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the sweep configuration and point list (see
    /// [`SweepConfig::fingerprint`](super::SweepConfig::fingerprint)).
    pub fingerprint: String,
    /// Per-point committed tallies, in sweep order.
    pub points: Vec<CheckpointPoint>,
}

impl Checkpoint {
    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] when the file cannot be read and
    /// [`EngineError::Parse`] when it is not a valid checkpoint document.
    pub fn load(path: &Path) -> Result<Self, EngineError> {
        let text = std::fs::read_to_string(path).map_err(|source| EngineError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let value = JsonValue::parse(&text).map_err(|message| EngineError::Parse {
            path: path.to_path_buf(),
            message,
        })?;
        Self::from_json(&value).map_err(|message| EngineError::Parse {
            path: path.to_path_buf(),
            message,
        })
    }

    /// Saves the checkpoint to `path` atomically (via
    /// [`super::write_atomic`]: write to a sibling temporary file, then
    /// rename), so a crash mid-write never corrupts an existing checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), EngineError> {
        super::write_atomic(path, &self.to_json().to_string())
    }

    /// The checkpoint as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(CHECKPOINT_VERSION as f64),
            ),
            (
                "fingerprint".into(),
                JsonValue::String(self.fingerprint.clone()),
            ),
            (
                "points".into(),
                JsonValue::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            JsonValue::Object(vec![
                                ("id".into(), JsonValue::String(p.id.clone())),
                                ("shots".into(), JsonValue::Number(p.shots as f64)),
                                ("failures".into(), JsonValue::Number(p.failures as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a checkpoint from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        super::json::check_schema_version(value, CHECKPOINT_VERSION as u64, "checkpoint")?;
        let fingerprint = value
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .ok_or("missing fingerprint")?
            .to_string();
        let points = value
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("missing points")?
            .iter()
            .map(|p| {
                let id = p
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or("point missing id")?
                    .to_string();
                let shots = p
                    .get("shots")
                    .and_then(JsonValue::as_usize)
                    .ok_or("point missing shots")?;
                let failures = p
                    .get("failures")
                    .and_then(JsonValue::as_usize)
                    .ok_or("point missing failures")?;
                if failures > shots {
                    return Err(format!("point '{id}': failures {failures} > shots {shots}"));
                }
                Ok(CheckpointPoint {
                    id,
                    shots,
                    failures,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            fingerprint,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: "floor=64;rse=None".into(),
            points: vec![
                CheckpointPoint {
                    id: "fig3/d=5/p=4e-3".into(),
                    shots: 128,
                    failures: 3,
                },
                CheckpointPoint {
                    id: "fig3/d=9/p=4e-3".into(),
                    shots: 64,
                    failures: 0,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let cp = sample();
        let parsed = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(parsed, cp);
    }

    #[test]
    fn save_and_load_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("q3de-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let cp = sample();
        cp.save(&path).unwrap();
        // A second save must atomically replace the first.
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/q3de/checkpoint.json")).unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }), "{err}");
    }

    #[test]
    fn schema_violations_are_rejected() {
        for (doc, what) in [
            (r#"{"points": []}"#, "missing schema version"),
            (
                r#"{"version": 1, "fingerprint": "x", "points": []}"#,
                "pre-rename version-1 file",
            ),
            (
                r#"{"schema_version": 99, "fingerprint": "x", "points": []}"#,
                "unknown major",
            ),
            (
                r#"{"schema_version": 2, "points": []}"#,
                "missing fingerprint",
            ),
            (
                r#"{"schema_version": 2, "fingerprint": "x"}"#,
                "missing points",
            ),
            (
                r#"{"schema_version": 2, "fingerprint": "x", "points": [{"id": "a", "shots": 1, "failures": 2}]}"#,
                "failures > shots",
            ),
        ] {
            let value = JsonValue::parse(doc).unwrap();
            assert!(Checkpoint::from_json(&value).is_err(), "{what}");
        }
    }
}
