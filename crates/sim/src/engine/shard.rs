//! Shard-first sweep primitives: deterministic stream partitions and
//! mergeable tally deltas.
//!
//! A sweep's statistics are a pure function of *which streams ran*, never of
//! where or in what order they ran (every [`ShotKernel`](super::ShotKernel)
//! is deterministic in its stream index).  This module exploits that to
//! split one sweep across N workers — threads, processes or machines — so
//! that the merged result is **bit-identical to a single-process run by
//! construction**:
//!
//! * a [`ShardPlan`] partitions every scheduling block (the doubling
//!   `floor, 2·floor, …, ceiling` blocks of the adaptive schedule) into
//!   `num_shards` disjoint, contiguous stream ranges — shard `k` owns the
//!   same slice of every block of every point, deterministically;
//! * a worker runs its slices and emits one [`TallyDelta`] per
//!   `(point, epoch)` block, carrying the plan fingerprint and the block
//!   epoch so a coordinator can refuse stale shards and re-assemble blocks
//!   exactly;
//! * the [`Coordinator`](super::coordinator::Coordinator) folds deltas —
//!   an associative, commutative merge — and makes the adaptive stop
//!   decision only at completed block boundaries, exactly where a
//!   single-process [`SweepRunner`](super::SweepRunner) would.
//!
//! [`SweepRunner`](super::SweepRunner) itself is an instance of this
//! protocol (N in-process shards, one in-process coordinator); the
//! `q3de-sweepd`/`q3de-sweepctl` binaries are the same protocol over files
//! or TCP.

use super::json::JsonValue;
use super::{EngineError, SweepConfig, SweepPoint};

/// Schema version of plan, shard and delta documents.  Folded into
/// [`ShardPlan::fingerprint`], so a worker built against a different major
/// is refused at hello/merge time instead of silently mis-merging.
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// One point of a [`ShardPlan`]: its stable id plus the tally baseline the
/// schedule continues from (non-zero when the plan extends a resumed
/// checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPoint {
    /// The sweep point's stable identifier.
    pub id: String,
    /// Shots already committed before this plan's first block.
    pub base_shots: usize,
    /// Failures among the baseline shots.
    pub base_failures: usize,
}

/// A deterministic partition of a sweep's stream-ID space across
/// `num_shards` disjoint, resumable shards.
///
/// The plan is pure data (ids and schedule parameters, no kernels), so a
/// coordinator can merge deltas without being able to *run* anything, and a
/// worker on another machine can rebuild the identical plan from the same
/// configuration and verify it via [`ShardPlan::fingerprint`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Number of shards the stream space is split into.
    pub num_shards: usize,
    /// Alignment of shard cut points (shard slices start at multiples of
    /// this within a block where possible), matching the packed kernels'
    /// 64-lane groups so a group is computed by one shard only.
    pub batch_size: usize,
    /// First block boundary of every point's schedule.
    pub shot_floor: usize,
    /// Shot budget per point.
    pub shot_ceiling: usize,
    /// Adaptive stopping target, if any.
    pub target_rse: Option<f64>,
    /// The `z` quantile of the Wilson stopping interval.
    pub confidence_z: f64,
    /// The points of the sweep, in sweep order.
    pub points: Vec<PlanPoint>,
}

impl ShardPlan {
    /// Builds the plan of a sweep: `config`'s schedule over `points`,
    /// continuing from `baselines` (committed `(shots, failures)` per
    /// point; pass `None` for a fresh sweep), split into `num_shards`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `baselines` has the wrong length.
    pub fn new(
        config: &SweepConfig,
        points: &[SweepPoint],
        baselines: Option<&[(usize, usize)]>,
        num_shards: usize,
    ) -> Self {
        assert!(num_shards > 0, "a plan needs at least one shard");
        if let Some(baselines) = baselines {
            assert_eq!(baselines.len(), points.len(), "one baseline per point");
        }
        Self {
            num_shards,
            batch_size: config.batch_size,
            shot_floor: config.first_target(),
            shot_ceiling: config.shot_ceiling,
            target_rse: config.target_rse,
            confidence_z: config.confidence_z,
            points: points
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let (base_shots, base_failures) =
                        baselines.map_or((0, 0), |baselines| baselines[i]);
                    PlanPoint {
                        id: p.id().to_string(),
                        base_shots,
                        base_failures,
                    }
                })
                .collect(),
        }
    }

    /// The sweep configuration the plan's schedule was derived from
    /// (without checkpoint/thread settings, which are per-process).
    pub fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            shot_floor: self.shot_floor,
            shot_ceiling: self.shot_ceiling,
            target_rse: self.target_rse,
            confidence_z: self.confidence_z,
            batch_size: self.batch_size,
            num_threads: None,
            checkpoint: None,
            resume: false,
        }
    }

    /// The fingerprint every [`TallyDelta`] of this plan carries.  It folds
    /// the schema version, the full schedule (floor, ceiling, target,
    /// quantile), the shard layout (`num_shards`, `batch_size` — slice cuts
    /// depend on both) and every point's id and baseline, so deltas from a
    /// stale plan — different shard count, different resumed state,
    /// different points — are refused cleanly instead of silently merged.
    pub fn fingerprint(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| format!("{}={}+{}", p.id, p.base_shots, p.base_failures))
            .collect();
        format!(
            "plan-v{PLAN_SCHEMA_VERSION};shards={};batch={};floor={};ceiling={};rse={:?};z={};points={}",
            self.num_shards,
            self.batch_size,
            self.shot_floor,
            self.shot_ceiling,
            self.target_rse,
            self.confidence_z,
            points.join("\u{1f}")
        )
    }

    /// The block boundary the point's tally reaches after committing epoch
    /// `epoch` (the schedule doubles from the baseline: `b0` is the floor
    /// for a fresh point or `min(2·base, ceiling)` for a resumed one, then
    /// each boundary doubles up to the ceiling).
    ///
    /// Returns `None` when the point has no such epoch (its baseline is
    /// already at or above the ceiling, or the schedule ended earlier).
    pub fn boundary(&self, point: usize, epoch: usize) -> Option<usize> {
        let config = self.sweep_config();
        let base = self.points[point].base_shots;
        if base >= self.shot_ceiling || self.shot_ceiling == 0 {
            return None;
        }
        let mut boundary = if base == 0 {
            config.first_target()
        } else {
            config.next_target(base)
        };
        for _ in 0..epoch {
            if boundary >= self.shot_ceiling {
                return None;
            }
            boundary = config.next_target(boundary);
        }
        Some(boundary)
    }

    /// The stream range `[start, end)` of block `epoch` of `point`.
    pub fn epoch_range(&self, point: usize, epoch: usize) -> Option<(u64, u64)> {
        let end = self.boundary(point, epoch)?;
        let start = if epoch == 0 {
            self.points[point].base_shots
        } else {
            self.boundary(point, epoch - 1)?
        };
        Some((start as u64, end as u64))
    }

    /// Number of epochs in `point`'s schedule (0 when the baseline already
    /// covers the ceiling).
    pub fn num_epochs(&self, point: usize) -> usize {
        let mut epochs = 0;
        while self.boundary(point, epochs).is_some() {
            epochs += 1;
        }
        epochs
    }

    /// The contiguous sub-range of `[start, end)` owned by `shard`: the
    /// `num_shards` slices are disjoint, cover the range exactly, and cut
    /// points snap to absolute multiples of `batch_size` where possible (so
    /// a packed kernel's 64-lane group is computed by one shard only).
    /// Slices of a small range may be empty.
    pub fn shard_slice(&self, range: (u64, u64), shard: usize) -> (u64, u64) {
        assert!(shard < self.num_shards, "shard index out of range");
        let (start, end) = range;
        let len = end - start;
        let n = self.num_shards as u64;
        let batch = self.batch_size as u64;
        let cut = |i: u64| -> u64 {
            if i == 0 {
                return start;
            }
            if i == n {
                return end;
            }
            let ideal = start + (len * i) / n;
            // Snap down to the batch grid, but never below the range start.
            ((ideal / batch) * batch).clamp(start, end)
        };
        (cut(shard as u64), cut(shard as u64 + 1))
    }

    /// Index of the point with the given id.
    pub fn point_index(&self, id: &str) -> Option<usize> {
        self.points.iter().position(|p| p.id == id)
    }

    /// The plan as a JSON document (the body of a `plan.json` artifact).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(PLAN_SCHEMA_VERSION as f64),
            ),
            (
                "num_shards".into(),
                JsonValue::Number(self.num_shards as f64),
            ),
            (
                "batch_size".into(),
                JsonValue::Number(self.batch_size as f64),
            ),
            (
                "shot_floor".into(),
                JsonValue::Number(self.shot_floor as f64),
            ),
            (
                "shot_ceiling".into(),
                JsonValue::Number(self.shot_ceiling as f64),
            ),
            (
                "target_rse".into(),
                self.target_rse.map_or(JsonValue::Null, JsonValue::Number),
            ),
            ("confidence_z".into(), JsonValue::Number(self.confidence_z)),
            (
                "points".into(),
                JsonValue::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            JsonValue::Object(vec![
                                ("id".into(), JsonValue::String(p.id.clone())),
                                ("base_shots".into(), JsonValue::Number(p.base_shots as f64)),
                                (
                                    "base_failures".into(),
                                    JsonValue::Number(p.base_failures as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a plan from its JSON document, rejecting unknown schema
    /// majors with a clear error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        super::json::check_schema_version(value, PLAN_SCHEMA_VERSION, "shard plan")?;
        let usize_field = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("plan missing {key}"))
        };
        let points = value
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("plan missing points")?
            .iter()
            .map(|p| {
                Ok(PlanPoint {
                    id: p
                        .get("id")
                        .and_then(JsonValue::as_str)
                        .ok_or("plan point missing id")?
                        .to_string(),
                    base_shots: p
                        .get("base_shots")
                        .and_then(JsonValue::as_usize)
                        .ok_or("plan point missing base_shots")?,
                    base_failures: p
                        .get("base_failures")
                        .and_then(JsonValue::as_usize)
                        .ok_or("plan point missing base_failures")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let plan = Self {
            num_shards: usize_field("num_shards")?,
            batch_size: usize_field("batch_size")?,
            shot_floor: usize_field("shot_floor")?,
            shot_ceiling: usize_field("shot_ceiling")?,
            target_rse: value.get("target_rse").and_then(JsonValue::as_f64),
            confidence_z: value
                .get("confidence_z")
                .and_then(JsonValue::as_f64)
                .ok_or("plan missing confidence_z")?,
            points,
        };
        if plan.num_shards == 0 {
            return Err("plan has zero shards".into());
        }
        if plan.batch_size == 0 {
            return Err("plan has zero batch size".into());
        }
        Ok(plan)
    }
}

/// The committed tally increment one shard emits for one scheduling block:
/// the shard's slice of block `epoch` of point `point`.
///
/// Deltas are the unit of the merge layer.  Merging is a fold over sets of
/// deltas — associative, commutative and duplicate-idempotent (a shard that
/// restarts may re-emit committed deltas; the coordinator verifies they are
/// identical and counts them once).
#[derive(Debug, Clone, PartialEq)]
pub struct TallyDelta {
    /// Fingerprint of the [`ShardPlan`] the delta belongs to; deltas with a
    /// foreign fingerprint are refused at merge time.
    pub plan_fingerprint: String,
    /// The emitting shard.
    pub shard: usize,
    /// Index of the point within the plan.
    pub point: usize,
    /// The point's id (redundant with `point`; cross-checked at merge time
    /// so a delta can never be attributed to the wrong point).
    pub point_id: String,
    /// The block epoch the delta belongs to.
    pub epoch: usize,
    /// Shots the shard ran in its slice of the block.
    pub shots: usize,
    /// Failures among those shots.
    pub failures: usize,
    /// Kernel wall-clock the shard spent on the slice, in seconds (a timing
    /// field: merged for reporting, irrelevant to the statistics).
    pub busy_secs: f64,
}

impl TallyDelta {
    /// The delta as a JSON document (one line of a shard file or one TCP
    /// frame payload).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(PLAN_SCHEMA_VERSION as f64),
            ),
            (
                "plan_fingerprint".into(),
                JsonValue::String(self.plan_fingerprint.clone()),
            ),
            ("shard".into(), JsonValue::Number(self.shard as f64)),
            ("point".into(), JsonValue::Number(self.point as f64)),
            ("point_id".into(), JsonValue::String(self.point_id.clone())),
            ("epoch".into(), JsonValue::Number(self.epoch as f64)),
            ("shots".into(), JsonValue::Number(self.shots as f64)),
            ("failures".into(), JsonValue::Number(self.failures as f64)),
            ("busy_secs".into(), JsonValue::Number(self.busy_secs)),
        ])
    }

    /// Parses a delta from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        super::json::check_schema_version(value, PLAN_SCHEMA_VERSION, "tally delta")?;
        let usize_field = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("delta missing {key}"))
        };
        let delta = Self {
            plan_fingerprint: value
                .get("plan_fingerprint")
                .and_then(JsonValue::as_str)
                .ok_or("delta missing plan_fingerprint")?
                .to_string(),
            shard: usize_field("shard")?,
            point: usize_field("point")?,
            point_id: value
                .get("point_id")
                .and_then(JsonValue::as_str)
                .ok_or("delta missing point_id")?
                .to_string(),
            epoch: usize_field("epoch")?,
            shots: usize_field("shots")?,
            failures: usize_field("failures")?,
            busy_secs: value
                .get("busy_secs")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
        };
        if delta.failures > delta.shots {
            return Err(format!(
                "delta {}@{} has more failures than shots",
                delta.point_id, delta.epoch
            ));
        }
        Ok(delta)
    }
}

/// Whether a shard may run a given block yet — the coordinator's answer to
/// a worker's gate query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochGate {
    /// The block is runnable: every earlier epoch of the point is
    /// committed and the point has not stopped.
    Run,
    /// The block must not run *yet*: an earlier epoch is still missing
    /// deltas from other shards.  The worker should work on another point
    /// or wait.
    Wait,
    /// The point is finished (converged, at its ceiling, or past its stop
    /// boundary); the shard has no more work on it.
    Skip,
}

/// Where a shard worker sends its deltas (and asks whether blocks are
/// runnable).  In-process sinks wrap the
/// [`Coordinator`](super::coordinator::Coordinator) behind a mutex; the
/// fabric binaries implement file- and TCP-backed sinks.
pub trait DeltaSink {
    /// Submits one delta.  Submission is idempotent: a re-sent committed
    /// delta (after a worker restart) is verified and ignored.
    ///
    /// # Errors
    ///
    /// Returns an error when the delta is refused (stale fingerprint,
    /// malformed) or the sink's transport fails; the worker aborts.
    fn submit(&mut self, delta: TallyDelta) -> Result<(), EngineError>;

    /// Whether `(point, epoch)` may run yet.  Sinks without live
    /// coordinator feedback (the file transport) always answer
    /// [`EpochGate::Run`]; the sweep still merges bit-identically, the
    /// worker just cannot stop early on adaptive convergence.
    ///
    /// # Errors
    ///
    /// Returns an error when the transport fails.
    fn gate(&mut self, point: usize, epoch: usize) -> Result<EpochGate, EngineError>;

    /// Blocks until the coordinator's state may have changed (a block
    /// committed or a point finished), after [`DeltaSink::gate`] returned
    /// only [`EpochGate::Wait`]s.  Sinks that never answer `Wait` can leave
    /// the default no-op.
    ///
    /// # Errors
    ///
    /// Returns an error when the transport fails.
    fn wait_for_progress(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
}

/// Drives one shard of a plan: runs the shard's slice of every runnable
/// block, in round order (epoch 0 of every point, then epoch 1, …), and
/// submits one [`TallyDelta`] per block to the sink.
///
/// A worker that previously committed deltas (its shard checkpoint)
/// re-submits them via `completed` instead of re-running the kernels —
/// submission is idempotent, so a killed-and-restarted worker loses at most
/// its in-flight block.
pub struct ShardWorker<'a> {
    plan: &'a ShardPlan,
    shard: usize,
}

impl<'a> ShardWorker<'a> {
    /// A worker for shard `shard` of `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn new(plan: &'a ShardPlan, shard: usize) -> Self {
        assert!(shard < plan.num_shards, "shard index out of range");
        Self { plan, shard }
    }

    /// Runs the shard to completion against `points` (which must match the
    /// plan's point list), re-submitting `completed` deltas first.  Every
    /// fresh delta is also passed to `on_delta` before submission — the
    /// hook shard checkpoints are written from.
    ///
    /// # Errors
    ///
    /// Returns the first sink error.
    ///
    /// # Panics
    ///
    /// Panics if `points` does not match the plan.
    pub fn run(
        &self,
        points: &[SweepPoint],
        completed: &[TallyDelta],
        sink: &mut dyn DeltaSink,
        mut on_delta: impl FnMut(&TallyDelta),
    ) -> Result<(), EngineError> {
        assert_eq!(points.len(), self.plan.points.len(), "plan/point mismatch");
        for (point, plan_point) in points.iter().zip(&self.plan.points) {
            assert_eq!(point.id(), plan_point.id, "plan/point id mismatch");
        }
        let fingerprint = self.plan.fingerprint();
        // Epochs this shard has already committed (resumed from a shard
        // checkpoint): re-submit without re-running, idempotently.
        let mut done_epochs: Vec<Vec<bool>> = (0..points.len())
            .map(|p| vec![false; self.plan.num_epochs(p)])
            .collect();
        for delta in completed {
            if delta.plan_fingerprint != fingerprint {
                return Err(EngineError::CheckpointMismatch {
                    reason: format!(
                        "shard checkpoint delta {}@{} belongs to another plan",
                        delta.point_id, delta.epoch
                    ),
                });
            }
            sink.submit(delta.clone())?;
            if let Some(slot) = done_epochs
                .get_mut(delta.point)
                .and_then(|epochs| epochs.get_mut(delta.epoch))
            {
                *slot = true;
            }
        }

        // `next` tracks, per point, the first epoch this shard has not run
        // yet; `open` tracks points the shard still owes blocks.
        let mut next: Vec<usize> = (0..points.len())
            .map(|p| done_epochs[p].iter().take_while(|&&d| d).count())
            .collect();
        let mut open: Vec<bool> = (0..points.len())
            .map(|p| next[p] < self.plan.num_epochs(p))
            .collect();
        loop {
            let mut progressed = false;
            let mut remaining = false;
            for p in 0..points.len() {
                if !open[p] {
                    continue;
                }
                match sink.gate(p, next[p])? {
                    EpochGate::Skip => {
                        open[p] = false;
                        continue;
                    }
                    EpochGate::Wait => {
                        remaining = true;
                        continue;
                    }
                    EpochGate::Run => {}
                }
                let epoch = next[p];
                let range = self.plan.epoch_range(p, epoch).expect("epoch in schedule");
                let (start, end) = self.plan.shard_slice(range, self.shard);
                let started = std::time::Instant::now();
                let failures = points[p].run_range(start, (end - start) as usize);
                let delta = TallyDelta {
                    plan_fingerprint: fingerprint.clone(),
                    shard: self.shard,
                    point: p,
                    point_id: self.plan.points[p].id.clone(),
                    epoch,
                    shots: (end - start) as usize,
                    failures,
                    busy_secs: started.elapsed().as_secs_f64(),
                };
                on_delta(&delta);
                sink.submit(delta)?;
                next[p] += 1;
                if next[p] >= self.plan.num_epochs(p) {
                    open[p] = false;
                } else {
                    remaining = true;
                }
                progressed = true;
            }
            if !remaining && !progressed {
                return Ok(());
            }
            if !progressed {
                sink.wait_for_progress()?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(floor: usize, ceiling: usize, shards: usize) -> ShardPlan {
        let config = SweepConfig {
            shot_floor: floor,
            ..SweepConfig::fixed(ceiling)
        };
        let points = vec![SweepPoint::new("a", |_s: u64| false)];
        ShardPlan::new(&config, &points, None, shards)
    }

    #[test]
    fn boundaries_double_from_the_floor_to_the_ceiling() {
        let plan = plan(64, 500, 3);
        let boundaries: Vec<usize> = (0..plan.num_epochs(0))
            .map(|e| plan.boundary(0, e).unwrap())
            .collect();
        assert_eq!(boundaries, vec![64, 128, 256, 500]);
        assert_eq!(plan.boundary(0, 4), None);
        assert_eq!(plan.epoch_range(0, 0), Some((0, 64)));
        assert_eq!(plan.epoch_range(0, 3), Some((256, 500)));
    }

    #[test]
    fn resumed_baselines_continue_the_schedule() {
        let config = SweepConfig {
            shot_floor: 64,
            ..SweepConfig::fixed(500)
        };
        let points = vec![SweepPoint::new("a", |_s: u64| false)];
        let plan = ShardPlan::new(&config, &points, Some(&[(100, 3)]), 2);
        // Resumed at 100 (a foreign boundary): the schedule doubles onward.
        assert_eq!(plan.boundary(0, 0), Some(200));
        assert_eq!(plan.boundary(0, 1), Some(400));
        assert_eq!(plan.boundary(0, 2), Some(500));
        assert_eq!(plan.num_epochs(0), 3);
        assert_eq!(plan.epoch_range(0, 0), Some((100, 200)));
        // A baseline at the ceiling has no epochs at all.
        let done = ShardPlan::new(&config, &points, Some(&[(500, 9)]), 2);
        assert_eq!(done.num_epochs(0), 0);
    }

    #[test]
    fn shard_slices_are_disjoint_and_cover_every_block() {
        for shards in [1usize, 2, 3, 5, 8] {
            let plan = plan(50, 1000, shards);
            for epoch in 0..plan.num_epochs(0) {
                let range = plan.epoch_range(0, epoch).unwrap();
                let mut cursor = range.0;
                for shard in 0..shards {
                    let (start, end) = plan.shard_slice(range, shard);
                    assert_eq!(start, cursor, "slices must tile the block in order");
                    assert!(end >= start);
                    cursor = end;
                }
                assert_eq!(cursor, range.1, "slices must cover the whole block");
            }
        }
    }

    #[test]
    fn shard_cuts_snap_to_the_batch_grid() {
        let plan = plan(64, 4096, 3);
        let range = plan.epoch_range(0, 4).unwrap(); // [1024, 2048)
        for shard in 0..3 {
            let (start, end) = plan.shard_slice(range, shard);
            assert_eq!(start % 64, 0, "cut {start} off the batch grid");
            if end != range.1 {
                assert_eq!(end % 64, 0, "cut {end} off the batch grid");
            }
        }
    }

    #[test]
    fn tiny_blocks_may_leave_some_shards_empty() {
        let plan = plan(2, 4, 8);
        let range = plan.epoch_range(0, 0).unwrap(); // [0, 2)
        let total: u64 = (0..8)
            .map(|s| {
                let (start, end) = plan.shard_slice(range, s);
                end - start
            })
            .sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn plan_json_roundtrips_and_fingerprint_is_stable() {
        let plan = plan(64, 500, 3);
        let parsed = ShardPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.fingerprint(), plan.fingerprint());
        // A different shard count is a different fingerprint.
        let other = super::ShardPlan {
            num_shards: 4,
            ..plan.clone()
        };
        assert_ne!(other.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn delta_json_roundtrips_and_rejects_bad_schemas() {
        let delta = TallyDelta {
            plan_fingerprint: "fp".into(),
            shard: 1,
            point: 0,
            point_id: "a".into(),
            epoch: 2,
            shots: 64,
            failures: 3,
            busy_secs: 0.5,
        };
        let parsed = TallyDelta::from_json(&delta.to_json()).unwrap();
        assert_eq!(parsed, delta);
        let mut bad = delta.to_json();
        if let JsonValue::Object(fields) = &mut bad {
            fields[0].1 = JsonValue::Number(99.0);
        }
        let err = TallyDelta::from_json(&bad).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }
}
