//! The merge layer of the shard protocol: folds [`TallyDelta`]s into
//! committed tallies and makes the adaptive stop decision.
//!
//! A [`Coordinator`] owns the authoritative state of a sharded sweep.  It
//! accepts deltas **in any order** — the fold is associative, commutative
//! and idempotent under re-submission — and commits a block only when all
//! shards of the plan have reported it *and* every earlier block of the
//! point is committed.  Because commits happen in block order and the
//! adaptive stop rule is evaluated exactly at committed block boundaries
//! over the folded (complete) tally, the merged run is bit-identical to a
//! single-process [`SweepRunner`](super::SweepRunner) by construction:
//! both see the same tallies at the same boundaries and therefore make the
//! same decisions.
//!
//! Deltas past a point's stop boundary (speculative work a worker ran
//! before learning of convergence, or a file-transport worker that ran to
//! the ceiling) are accepted and discarded — they never contaminate the
//! committed tally.

use std::collections::BTreeMap;

use super::checkpoint::{Checkpoint, CheckpointPoint};
use super::shard::{EpochGate, ShardPlan, TallyDelta};
use super::{EngineError, PointReport, SweepReport};

/// Accumulated per-epoch state while a block waits for stragglers.
#[derive(Debug, Clone, Default)]
struct EpochAcc {
    shots: usize,
    failures: usize,
    busy_secs: f64,
    reported: usize,
}

/// Per-point merge state.
#[derive(Debug, Clone)]
struct CoordPoint {
    committed_shots: usize,
    committed_failures: usize,
    busy_secs: f64,
    /// Next epoch to commit (everything below is folded in).
    next_epoch: usize,
    num_epochs: usize,
    finished: bool,
    converged: bool,
    resumed: usize,
    /// Blocks with at least one delta but not yet committed.
    pending: BTreeMap<usize, EpochAcc>,
    /// Every delta ever accepted, keyed by `(epoch, shard)` — the record
    /// that makes re-submission idempotent instead of double-counted.
    seen: BTreeMap<(usize, usize), (usize, usize)>,
}

/// The coordinator of a sharded sweep: validates and folds deltas, commits
/// blocks in order, and decides when each point stops.
#[derive(Debug, Clone)]
pub struct Coordinator {
    plan: ShardPlan,
    fingerprint: String,
    points: Vec<CoordPoint>,
}

/// What a [`Coordinator::submit`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Whether at least one block was committed by this submission (the
    /// trigger for checkpoint writes and worker wake-ups).
    pub committed: bool,
}

impl Coordinator {
    /// A coordinator over `plan`, starting from the plan's baselines.
    /// Points whose baseline already satisfies the stop rule (or sits at
    /// the ceiling) start finished, exactly as in a single-process resume.
    pub fn new(plan: ShardPlan) -> Self {
        let fingerprint = plan.fingerprint();
        let config = plan.sweep_config();
        let points = (0..plan.points.len())
            .map(|i| {
                let base = &plan.points[i];
                let num_epochs = plan.num_epochs(i);
                let mut point = CoordPoint {
                    committed_shots: base.base_shots,
                    committed_failures: base.base_failures,
                    busy_secs: 0.0,
                    next_epoch: 0,
                    num_epochs,
                    finished: false,
                    converged: false,
                    resumed: base.base_shots,
                    pending: BTreeMap::new(),
                    seen: BTreeMap::new(),
                };
                if config.is_converged(base.base_shots, base.base_failures) {
                    point.finished = true;
                    point.converged = true;
                } else if num_epochs == 0 {
                    point.finished = true;
                }
                point
            })
            .collect();
        Self {
            plan,
            fingerprint,
            points,
        }
    }

    /// The plan being coordinated.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Folds one delta in.  Order-independent: any interleaving of the
    /// same delta set yields the same committed state.  Duplicate deltas
    /// are verified against the first copy and ignored; conflicting
    /// duplicates, foreign fingerprints, wrong slice sizes and unknown
    /// points are refused.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::CheckpointMismatch`] when the delta cannot
    /// belong to this plan.
    pub fn submit(&mut self, delta: &TallyDelta) -> Result<SubmitOutcome, EngineError> {
        let refuse = |reason: String| EngineError::CheckpointMismatch { reason };
        if delta.plan_fingerprint != self.fingerprint {
            return Err(refuse(format!(
                "delta fingerprint '{}' does not match plan '{}'",
                delta.plan_fingerprint, self.fingerprint
            )));
        }
        if delta.shard >= self.plan.num_shards {
            return Err(refuse(format!("delta from unknown shard {}", delta.shard)));
        }
        let Some(point_state) = self.points.get_mut(delta.point) else {
            return Err(refuse(format!("delta for unknown point {}", delta.point)));
        };
        if self.plan.points[delta.point].id != delta.point_id {
            return Err(refuse(format!(
                "delta point id '{}' does not match plan point {} ('{}')",
                delta.point_id, delta.point, self.plan.points[delta.point].id
            )));
        }
        if delta.epoch >= point_state.num_epochs {
            return Err(refuse(format!(
                "delta epoch {} outside the {}-epoch schedule of '{}'",
                delta.epoch, point_state.num_epochs, delta.point_id
            )));
        }
        let range = self
            .plan
            .epoch_range(delta.point, delta.epoch)
            .expect("epoch checked above");
        let (start, end) = self.plan.shard_slice(range, delta.shard);
        if delta.shots != (end - start) as usize {
            return Err(refuse(format!(
                "delta {}@{} shard {} carries {} shots where the plan slice holds {}",
                delta.point_id,
                delta.epoch,
                delta.shard,
                delta.shots,
                end - start
            )));
        }
        // Idempotence: an exact duplicate is dropped, a conflicting one is
        // a corrupted shard.
        if let Some(&(shots, failures)) = point_state.seen.get(&(delta.epoch, delta.shard)) {
            if (shots, failures) == (delta.shots, delta.failures) {
                return Ok(SubmitOutcome { committed: false });
            }
            return Err(refuse(format!(
                "conflicting duplicate delta {}@{} from shard {}: ({}, {}) vs ({}, {})",
                delta.point_id,
                delta.epoch,
                delta.shard,
                delta.shots,
                delta.failures,
                shots,
                failures
            )));
        }
        point_state
            .seen
            .insert((delta.epoch, delta.shard), (delta.shots, delta.failures));
        // Work past the stop boundary (speculation, or a coordinator-blind
        // file worker running to the ceiling) is recorded but discarded.
        if point_state.finished {
            return Ok(SubmitOutcome { committed: false });
        }
        let acc = point_state.pending.entry(delta.epoch).or_default();
        acc.shots += delta.shots;
        acc.failures += delta.failures;
        acc.busy_secs += delta.busy_secs;
        acc.reported += 1;

        // Commit every now-complete block in order.
        let config = self.plan.sweep_config();
        let mut committed = false;
        while let Some(acc) = self.points[delta.point]
            .pending
            .get(&{ self.points[delta.point].next_epoch })
        {
            if acc.reported < self.plan.num_shards {
                break;
            }
            let point_state = &mut self.points[delta.point];
            let epoch = point_state.next_epoch;
            let acc = point_state.pending.remove(&epoch).expect("checked above");
            let boundary = self
                .plan
                .boundary(delta.point, epoch)
                .expect("committed epoch is in the schedule");
            point_state.committed_shots += acc.shots;
            point_state.committed_failures += acc.failures;
            point_state.busy_secs += acc.busy_secs;
            debug_assert_eq!(
                point_state.committed_shots, boundary,
                "committed tally must land exactly on the block boundary"
            );
            point_state.next_epoch += 1;
            committed = true;
            let converged =
                config.is_converged(point_state.committed_shots, point_state.committed_failures);
            if converged || point_state.committed_shots >= config.shot_ceiling {
                point_state.finished = true;
                point_state.converged = converged;
                point_state.pending.clear();
                break;
            }
        }
        Ok(SubmitOutcome { committed })
    }

    /// Whether `(point, epoch)` may run yet — the gate workers consult
    /// before starting a block.  In adaptive mode a block is runnable only
    /// once every earlier block of its point is committed (so convergence
    /// can stop the point with zero overshoot); without a stopping target
    /// every scheduled block will run regardless, so the gate never asks a
    /// shard to wait.
    pub fn gate(&self, point: usize, epoch: usize) -> EpochGate {
        let state = &self.points[point];
        if state.finished {
            return EpochGate::Skip;
        }
        if epoch >= state.num_epochs {
            return EpochGate::Skip;
        }
        if self.plan.target_rse.is_none() || epoch <= state.next_epoch {
            return EpochGate::Run;
        }
        EpochGate::Wait
    }

    /// Indices of the points that are finished (converged or at their
    /// ceiling).
    pub fn finished_points(&self) -> Vec<usize> {
        (0..self.points.len())
            .filter(|&i| self.points[i].finished)
            .collect()
    }

    /// Whether every point of the sweep is finished.
    pub fn all_finished(&self) -> bool {
        self.points.iter().all(|p| p.finished)
    }

    /// The `(point, epoch, shard)` blocks still missing before the sweep
    /// can finish — what `q3de-sweepctl status` reports.  For an
    /// unfinished point every epoch from its commit frontier up to the
    /// ceiling is listed (an adaptive sweep may stop needing later ones,
    /// but they are required until a boundary converges).
    pub fn missing(&self) -> Vec<(usize, usize, usize)> {
        let mut missing = Vec::new();
        for (i, state) in self.points.iter().enumerate() {
            if state.finished {
                continue;
            }
            for epoch in state.next_epoch..state.num_epochs {
                for shard in 0..self.plan.num_shards {
                    if !state.seen.contains_key(&(epoch, shard)) {
                        missing.push((i, epoch, shard));
                    }
                }
            }
        }
        missing
    }

    /// The committed tallies as an engine [`Checkpoint`] — the same
    /// document a single-process [`SweepRunner`](super::SweepRunner) with
    /// this configuration would write, so a sharded sweep can be taken
    /// over by a single process (and vice versa).
    pub fn checkpoint(&self) -> Checkpoint {
        let ids: Vec<&str> = self.plan.points.iter().map(|p| p.id.as_str()).collect();
        Checkpoint {
            fingerprint: self.plan.sweep_config().fingerprint_of_ids(&ids),
            points: self
                .plan
                .points
                .iter()
                .zip(&self.points)
                .map(|(p, s)| CheckpointPoint {
                    id: p.id.clone(),
                    shots: s.committed_shots,
                    failures: s.committed_failures,
                })
                .collect(),
        }
    }

    /// The per-point progress `(committed shots, committed failures,
    /// finished, converged)`, in plan order.
    pub fn progress(&self) -> Vec<(usize, usize, bool, bool)> {
        self.points
            .iter()
            .map(|p| {
                (
                    p.committed_shots,
                    p.committed_failures,
                    p.finished,
                    p.converged,
                )
            })
            .collect()
    }

    /// The final report of a completed sweep.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::CheckpointMismatch`] when a point is not
    /// finished (deltas are still missing) — see [`Coordinator::missing`].
    pub fn report(&self, wall_clock_secs: f64, threads: usize) -> Result<SweepReport, EngineError> {
        if !self.all_finished() {
            let missing = self.missing();
            let preview: Vec<String> = missing
                .iter()
                .take(5)
                .map(|&(p, e, s)| format!("{}@{e}/shard{s}", self.plan.points[p].id))
                .collect();
            return Err(EngineError::CheckpointMismatch {
                reason: format!(
                    "sweep is incomplete: {} blocks missing (first: {})",
                    missing.len(),
                    preview.join(", ")
                ),
            });
        }
        Ok(SweepReport {
            points: self
                .plan
                .points
                .iter()
                .zip(&self.points)
                .map(|(p, s)| PointReport {
                    id: p.id.clone(),
                    shots: s.committed_shots,
                    failures: s.committed_failures,
                    converged: s.converged,
                    resumed_shots: s.resumed,
                    busy_secs: s.busy_secs,
                    confidence_z: self.plan.confidence_z,
                })
                .collect(),
            wall_clock_secs,
            threads,
            shot_floor: self.plan.shot_floor,
            shot_ceiling: self.plan.shot_ceiling,
            target_rse: self.plan.target_rse,
            meta: Vec::new(),
        })
    }

    /// Folds a whole delta set at once (the offline `merge` entry point).
    ///
    /// # Errors
    ///
    /// Returns the first refusal.
    pub fn submit_all<'d>(
        &mut self,
        deltas: impl IntoIterator<Item = &'d TallyDelta>,
    ) -> Result<(), EngineError> {
        for delta in deltas {
            self.submit(delta)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SweepConfig, SweepPoint};
    use super::*;

    fn toy_points() -> Vec<SweepPoint> {
        vec![
            SweepPoint::new("a", |s: u64| s.is_multiple_of(7)),
            SweepPoint::new("b", |s: u64| s.is_multiple_of(3)),
        ]
    }

    fn deltas_for(plan: &ShardPlan, points: &[SweepPoint]) -> Vec<TallyDelta> {
        let mut out = Vec::new();
        for (p, point) in plan.points.iter().enumerate() {
            for epoch in 0..plan.num_epochs(p) {
                let range = plan.epoch_range(p, epoch).unwrap();
                for shard in 0..plan.num_shards {
                    let (start, end) = plan.shard_slice(range, shard);
                    out.push(TallyDelta {
                        plan_fingerprint: plan.fingerprint(),
                        shard,
                        point: p,
                        point_id: point.id.clone(),
                        epoch,
                        shots: (end - start) as usize,
                        failures: points[p].run_range(start, (end - start) as usize),
                        busy_secs: 0.0,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn any_submission_order_commits_the_same_tallies() {
        let config = SweepConfig::fixed(200);
        let points = toy_points();
        let plan = ShardPlan::new(&config, &points, None, 3);
        let mut deltas = deltas_for(&plan, &points);
        let reference = {
            let mut c = Coordinator::new(plan.clone());
            c.submit_all(&deltas).unwrap();
            c.report(0.0, 1).unwrap()
        };
        deltas.reverse();
        let reversed = {
            let mut c = Coordinator::new(plan.clone());
            c.submit_all(&deltas).unwrap();
            c.report(0.0, 1).unwrap()
        };
        assert_eq!(reference.points, reversed.points);
        // Duplicate re-submission is idempotent.
        let mut twice = Coordinator::new(plan);
        twice.submit_all(&deltas).unwrap();
        twice.submit_all(&deltas).unwrap();
        assert_eq!(twice.report(0.0, 1).unwrap().points, reference.points);
    }

    #[test]
    fn incomplete_merges_report_what_is_missing() {
        let config = SweepConfig::fixed(100);
        let points = toy_points();
        let plan = ShardPlan::new(&config, &points, None, 2);
        let deltas = deltas_for(&plan, &points);
        let mut c = Coordinator::new(plan);
        // Withhold the last delta.
        c.submit_all(&deltas[..deltas.len() - 1]).unwrap();
        assert!(!c.all_finished());
        let missing = c.missing();
        assert_eq!(missing.len(), 1);
        let err = c.report(0.0, 1).unwrap_err();
        assert!(
            matches!(err, EngineError::CheckpointMismatch { .. }),
            "{err}"
        );
        // Delivering it completes the sweep.
        c.submit(&deltas[deltas.len() - 1]).unwrap();
        assert!(c.all_finished());
        c.report(0.0, 1).unwrap();
    }

    #[test]
    fn foreign_and_conflicting_deltas_are_refused() {
        let config = SweepConfig::fixed(64);
        let points = toy_points();
        let plan = ShardPlan::new(&config, &points, None, 2);
        let deltas = deltas_for(&plan, &points);
        let mut c = Coordinator::new(plan);
        let mut foreign = deltas[0].clone();
        foreign.plan_fingerprint = "other".into();
        assert!(c.submit(&foreign).is_err());
        c.submit(&deltas[0]).unwrap();
        let mut conflicting = deltas[0].clone();
        conflicting.failures = deltas[0].failures + 1;
        let err = c.submit(&conflicting).unwrap_err();
        assert!(
            matches!(err, EngineError::CheckpointMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn adaptive_stop_discards_deltas_past_the_boundary() {
        // Point "a" fails every shot: it converges at the first boundary.
        let config = SweepConfig::adaptive(64, 512, 0.5);
        let points = vec![SweepPoint::new("a", |_s: u64| true)];
        let plan = ShardPlan::new(&config, &points, None, 2);
        let deltas = deltas_for(&plan, &points);
        let mut c = Coordinator::new(plan.clone());
        c.submit_all(&deltas).unwrap();
        let report = c.report(0.0, 1).unwrap();
        assert!(report.points[0].converged);
        assert_eq!(
            report.points[0].shots, 64,
            "the committed tally stops at the convergence boundary"
        );
        assert_eq!(report.points[0].failures, 64);
    }

    #[test]
    fn gates_enforce_commit_order_only_in_adaptive_mode() {
        let fixed_plan = ShardPlan::new(&SweepConfig::fixed(256), &toy_points(), None, 2);
        let fixed = Coordinator::new(fixed_plan);
        assert_eq!(fixed.gate(0, 2), EpochGate::Run, "fixed mode never waits");

        let adaptive_plan =
            ShardPlan::new(&SweepConfig::adaptive(64, 256, 0.1), &toy_points(), None, 2);
        let adaptive = Coordinator::new(adaptive_plan);
        assert_eq!(adaptive.gate(0, 0), EpochGate::Run);
        assert_eq!(adaptive.gate(0, 1), EpochGate::Wait);
    }
}
