//! The adaptive Monte-Carlo sweep engine.
//!
//! Every figure of the paper is a Monte-Carlo estimate over a grid of
//! parameter points, and before this module existed each figure binary
//! hand-rolled its own fixed-shot loop — wasting cores on long-converged
//! points while starving the rare-event points cosmic-ray bursts live in.
//! [`SweepRunner`] replaces those loops with one shared scheduler:
//!
//! * **a sweep is a grid** — each [`SweepPoint`] wraps an arbitrary boxed
//!   [`ShotKernel`] (built from a [`MemoryExperimentConfig`], a
//!   [`ChipMemoryExperiment`], or any closure) that maps a global stream
//!   index to one shot's pass/fail outcome;
//! * **sharded execution** — the runner is an in-process instance of the
//!   [shard protocol](shard): it builds a [`ShardPlan`] with one shard per
//!   worker thread, each thread runs its deterministic slice of every
//!   scheduling block of every point, and a local
//!   [`Coordinator`] folds the resulting
//!   [`TallyDelta`]s — the exact code path the `q3de-sweepd` /
//!   `q3de-sweepctl` fabric runs across processes and machines, which is
//!   why a distributed sweep is bit-identical to a local one (the
//!   memory/chip kernels decode through pooled persistent decoder
//!   contexts, so each worker reuses one warm space-time graph across all
//!   the shots of its slices);
//! * **adaptive stopping** — with a `target_rse`, each point stops once the
//!   relative half-width of the Wilson score interval of its tally drops
//!   below the target, checked only at deterministic block boundaries
//!   (`shot_floor`, then doubling up to `shot_ceiling`), so results are
//!   bit-identical for a fixed seed regardless of thread count or machine;
//! * **checkpoint/resume** — committed tallies (always covering the stream
//!   prefix `0..shots`) are persisted as JSON after every completed block;
//!   a killed sweep resumed from its checkpoint *with the same
//!   configuration* finishes with bit-identical statistics.  A *finished*
//!   sweep can also be extended by resuming with a larger ceiling; the
//!   extended schedule doubles onward from the resumed count, so in
//!   adaptive mode its convergence look-points (and therefore the final
//!   shot counts) may differ from a fresh run at the larger ceiling —
//!   every tally is still an honest prefix estimate.
//!
//! Statistical honesty: the sequential looks at block boundaries inflate
//! the realised coverage of the final interval slightly (the usual optional
//! stopping caveat); boundaries double in size, so the number of looks is
//! logarithmic and the effect is small, and the shot floor keeps any point
//! from stopping on noise.
//!
//! ```
//! use q3de_sim::engine::{SweepConfig, SweepPoint, SweepRunner};
//!
//! // A toy kernel: stream parity. Real sweeps build points from
//! // MemoryExperimentConfig / ChipMemoryExperiment instead.
//! let points = vec![SweepPoint::new("even", |stream| stream % 2 == 0)];
//! let report = SweepRunner::new(SweepConfig::fixed(100)).run(points)?;
//! let point = report.point("even").unwrap();
//! assert_eq!((point.shots, point.failures), (100, 50));
//! # Ok::<(), q3de_sim::engine::EngineError>(())
//! ```

pub mod coordinator;
pub mod json;
pub mod shard;

mod checkpoint;

pub use checkpoint::{Checkpoint, CheckpointPoint, CHECKPOINT_VERSION};
pub use coordinator::{Coordinator, SubmitOutcome};
pub use shard::{
    DeltaSink, EpochGate, PlanPoint, ShardPlan, ShardWorker, TallyDelta, PLAN_SCHEMA_VERSION,
};

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::chip::{ChipMemoryExperiment, ChipMemoryExperimentConfig};
use crate::memory::{DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use json::JsonValue;
use q3de_lattice::LatticeError;
use q3de_scaling::{relative_half_width, wilson_interval, Z_95};
use rand::{Rng, SeedableRng};

/// Errors of the sweep engine (checkpoint and report I/O).
#[derive(Debug)]
pub enum EngineError {
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A file was read but is not a valid document.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A checkpoint exists but belongs to a different sweep (other points,
    /// seeds, floor or target), or its tallies do not fit this schedule.
    CheckpointMismatch {
        /// Why the checkpoint cannot be resumed.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            EngineError::Parse { path, message } => {
                write!(f, "cannot parse {}: {message}", path.display())
            }
            EngineError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint does not match this sweep: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One shot of a sweep point: maps a global stream index to whether the
/// shot *failed* (e.g. ended in a logical error).
///
/// Kernels must be deterministic in `stream` — the engine relies on the
/// tally over a stream set being independent of execution order and thread
/// assignment.  Blanket-implemented for closures.
pub trait ShotKernel: Send + Sync {
    /// Runs the shot of stream index `stream`; `true` means failure.
    fn run(&self, stream: u64) -> bool;
}

impl<F> ShotKernel for F
where
    F: Fn(u64) -> bool + Send + Sync,
{
    fn run(&self, stream: u64) -> bool {
        self(stream)
    }
}

/// A kernel that runs 64 shots per call: group `g` covers streams
/// `g · 64 .. g · 64 + 64`, and bit `lane` of the returned mask is the
/// failure flag of stream `g · 64 + lane`.
///
/// Like [`ShotKernel`], the mask must be deterministic in `group` —
/// independent of execution order, thread assignment and of how many other
/// groups run — so a sweep's tally stays reproducible under any
/// batch/thread configuration.  [`crate::PackedShotBatch`] is the canonical
/// implementation.
pub trait PackedShotKernel: Send + Sync {
    /// Runs the 64 shots of group `group` and returns their failure mask.
    fn run_group(&self, group: u64) -> u64;
}

impl<F> PackedShotKernel for F
where
    F: Fn(u64) -> u64 + Send + Sync,
{
    fn run_group(&self, group: u64) -> u64 {
        self(group)
    }
}

/// The two kernel shapes a sweep point can drive: one shot per call, or a
/// packed 64-shot group per call.
enum KernelImpl {
    PerShot(Box<dyn ShotKernel>),
    Packed(Box<dyn PackedShotKernel>),
}

/// One parameter point of a sweep: a stable identifier plus a boxed shot
/// kernel.
pub struct SweepPoint {
    id: String,
    kernel: KernelImpl,
}

impl fmt::Debug for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepPoint").field("id", &self.id).finish()
    }
}

impl SweepPoint {
    /// Wraps an arbitrary kernel.  The `id` keys checkpoint entries and
    /// report rows, so it must be unique within a sweep and stable across
    /// runs.
    pub fn new(id: impl Into<String>, kernel: impl ShotKernel + 'static) -> Self {
        Self {
            id: id.into(),
            kernel: KernelImpl::PerShot(Box::new(kernel)),
        }
    }

    /// Wraps a packed 64-shot-group kernel.  Scheduling, checkpointing and
    /// convergence work in shots exactly as for [`SweepPoint::new`]; the
    /// engine maps each scheduled stream range onto the groups that cover
    /// it and masks out-of-range lanes.
    pub fn new_packed(id: impl Into<String>, kernel: impl PackedShotKernel + 'static) -> Self {
        Self {
            id: id.into(),
            kernel: KernelImpl::Packed(Box::new(kernel)),
        }
    }

    /// A point whose shots run a single-patch memory experiment: stream
    /// `s` replays [`MemoryExperiment::run_stream`]`(strategy, base_seed, s)`
    /// with an RNG of type `R`, exactly like
    /// [`MemoryExperiment::estimate_parallel`].
    ///
    /// # Errors
    ///
    /// Returns an error if the configured code distance is invalid.
    pub fn from_memory<R>(
        id: impl Into<String>,
        config: MemoryExperimentConfig,
        strategy: DecodingStrategy,
        base_seed: u64,
    ) -> Result<Self, LatticeError>
    where
        R: Rng + SeedableRng,
    {
        let experiment = MemoryExperiment::new(config)?;
        Ok(Self::new(id, move |stream| {
            experiment
                .run_stream::<R>(strategy, base_seed, stream)
                .logical_failure
        }))
    }

    /// A point whose shots run through the bit-packed batch kernel
    /// ([`crate::PackedShotBatch`]): group `g` simulates streams
    /// `g · 64 .. g · 64 + 64` in one pass of bitwise sampling, packed
    /// parity extraction and quiet-lane-skipping decode.
    ///
    /// Equivalent to [`MemoryExperiment::estimate_packed`] over the same
    /// `(base_seed, shots)`; **not** stream-compatible with
    /// [`SweepPoint::from_memory`] (the packed path has its own group-level
    /// RNG discipline — see [`crate::PackedShotBatch`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the configured code distance is invalid.
    pub fn from_memory_packed<R>(
        id: impl Into<String>,
        config: MemoryExperimentConfig,
        strategy: DecodingStrategy,
        base_seed: u64,
    ) -> Result<Self, LatticeError>
    where
        R: Rng + SeedableRng + 'static,
    {
        let experiment = MemoryExperiment::new(config)?;
        Ok(Self::new_packed(
            id,
            experiment.packed::<R>(strategy, base_seed),
        ))
    }

    /// A point whose shots run a chip-level memory experiment: stream `s`
    /// replays [`ChipMemoryExperiment::run_chip_shot`] and fails when any
    /// patch fails, exactly like
    /// [`ChipMemoryExperiment::estimate_parallel`].
    ///
    /// # Errors
    ///
    /// Returns an error if the chip configuration is invalid.
    pub fn from_chip<R>(
        id: impl Into<String>,
        config: ChipMemoryExperimentConfig,
        strategy: DecodingStrategy,
        base_seed: u64,
    ) -> Result<Self, LatticeError>
    where
        R: Rng + SeedableRng,
    {
        let experiment = ChipMemoryExperiment::new(config)?;
        Ok(Self::new(id, move |stream| {
            let (failures, _struck) = experiment.run_chip_shot::<R>(strategy, base_seed, stream);
            failures.iter().any(|&failed| failed)
        }))
    }

    /// The point's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Runs the shot of stream index `stream`.
    ///
    /// On a packed point this computes the whole 64-lane group containing
    /// `stream` and extracts one bit — correct but wasteful; batch
    /// schedulers go through [`SweepPoint::run_range`] instead.
    pub fn run(&self, stream: u64) -> bool {
        match &self.kernel {
            KernelImpl::PerShot(kernel) => kernel.run(stream),
            KernelImpl::Packed(kernel) => (kernel.run_group(stream / 64) >> (stream % 64)) & 1 == 1,
        }
    }

    /// Runs the `len` shots of streams `start .. start + len` and returns
    /// the failure count — the engine's batch entry point.
    ///
    /// Per-shot kernels just loop.  Packed kernels run each 64-lane group
    /// overlapping the range once and popcount the in-range lanes, so a
    /// group-aligned batch (the default `batch_size` of 64) costs exactly
    /// one `run_group` call.
    pub fn run_range(&self, start: u64, len: usize) -> usize {
        match &self.kernel {
            KernelImpl::PerShot(kernel) => (0..len)
                .filter(|&offset| kernel.run(start + offset as u64))
                .count(),
            KernelImpl::Packed(kernel) => {
                if len == 0 {
                    return 0;
                }
                let end = start + len as u64;
                let mut failures = 0usize;
                for group in start / 64..=(end - 1) / 64 {
                    let lo = start.saturating_sub(group * 64).min(64) as u32;
                    let hi = (end - group * 64).min(64) as u32;
                    // lanes lo..hi of this group are in range
                    let mask = if hi - lo == 64 {
                        u64::MAX
                    } else {
                        ((1u64 << (hi - lo)) - 1) << lo
                    };
                    failures += (kernel.run_group(group) & mask).count_ones() as usize;
                }
                failures
            }
        }
    }
}

/// Configuration of a [`SweepRunner`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Minimum shots per point before the first convergence check — the
    /// floor that keeps fixed-seed runs reproducible and stops no point on
    /// noise.  Clamped into `1..=shot_ceiling`.
    pub shot_floor: usize,
    /// Maximum shots per point (the budget of a point that never
    /// converges; in fixed mode, simply *the* shot count).
    pub shot_ceiling: usize,
    /// Adaptive stopping target: a point stops once the relative Wilson
    /// half-width of its tally is at most this value.  `None` disables
    /// adaptive stopping (every point runs to `shot_ceiling`).
    pub target_rse: Option<f64>,
    /// The `z` quantile of the Wilson interval (default [`Z_95`]).
    pub confidence_z: f64,
    /// Work-stealing granularity: shots per scheduled batch.  The default
    /// (64) matches the packed kernels' group width, so a packed point
    /// computes each group exactly once; any value works for any kernel —
    /// tallies are batch-size-independent either way.
    pub batch_size: usize,
    /// Worker threads; `None` uses [`std::thread::available_parallelism`].
    pub num_threads: Option<usize>,
    /// Checkpoint file: written after every completed block, loaded by
    /// [`SweepConfig::resume`].
    pub checkpoint: Option<PathBuf>,
    /// Whether to resume from an existing checkpoint file (a missing file
    /// is not an error — the sweep just starts fresh).
    pub resume: bool,
}

impl SweepConfig {
    /// A fixed-shot sweep: every point runs exactly `shots` shots.
    ///
    /// The shot floor is set to `min(shots, 64)` — with no stopping target
    /// it never ends a point early, it only sizes the first scheduling
    /// block, so long fixed sweeps checkpoint progressively (after 64, 128,
    /// 256, … shots per point) instead of only at completion, and a
    /// finished sweep can be extended by resuming with a larger `shots`
    /// (both runs need the same floor, i.e. `shots >= 64` in both, for the
    /// checkpoint fingerprints to agree).
    pub fn fixed(shots: usize) -> Self {
        Self {
            shot_floor: shots.min(64),
            shot_ceiling: shots,
            target_rse: None,
            confidence_z: Z_95,
            batch_size: 64,
            num_threads: None,
            checkpoint: None,
            resume: false,
        }
    }

    /// An adaptive sweep: each point runs at least `floor` and at most
    /// `ceiling` shots, stopping early once its relative Wilson half-width
    /// reaches `target_rse`.
    pub fn adaptive(floor: usize, ceiling: usize, target_rse: f64) -> Self {
        Self {
            shot_floor: floor,
            shot_ceiling: ceiling,
            target_rse: Some(target_rse),
            ..Self::fixed(ceiling)
        }
    }

    /// Sets the checkpoint path, builder style.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Enables or disables resuming, builder style.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Sets the worker-thread count, builder style.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = Some(threads);
        self
    }

    /// Sets the batch size, builder style.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// The fingerprint persisted into checkpoints.  It covers everything
    /// that determines which streams a tally is made of and where block
    /// boundaries fall: the checkpoint schema version, the point ids (in
    /// order), the shot floor, the stopping target and the confidence
    /// quantile.  The shot *ceiling* is deliberately excluded so a finished
    /// sweep can be extended by resuming with a larger budget (in adaptive
    /// mode the extension's convergence look-points continue from the
    /// resumed count rather than replaying a fresh schedule — see the
    /// module docs).  `batch_size` and the thread/shard count are excluded
    /// too, and *provably* so: a committed tally is a pure function of its
    /// stream prefix `0..shots`, and block boundaries depend only on the
    /// floor and ceiling, so a checkpoint resumes bit-identically under any
    /// batch size or worker count (pinned by
    /// `checkpoints_resume_across_batch_sizes_and_thread_counts` in this
    /// module's tests).
    pub fn fingerprint(&self, points: &[SweepPoint]) -> String {
        let ids: Vec<&str> = points.iter().map(|p| p.id()).collect();
        self.fingerprint_of_ids(&ids)
    }

    /// [`SweepConfig::fingerprint`] from bare point ids — what a
    /// coordinator uses when it has only a [`ShardPlan`] (pure data, no
    /// runnable kernels) and must still emit engine-compatible checkpoints.
    pub fn fingerprint_of_ids(&self, ids: &[&str]) -> String {
        format!(
            "v{CHECKPOINT_VERSION};floor={};rse={:?};z={};ids={}",
            self.shot_floor.clamp(1, self.shot_ceiling.max(1)),
            self.target_rse,
            self.confidence_z,
            ids.join("\u{1f}")
        )
    }

    /// The first block boundary of the schedule (0 for an empty sweep).
    fn first_target(&self) -> usize {
        if self.shot_ceiling == 0 {
            return 0;
        }
        self.shot_floor.clamp(1, self.shot_ceiling)
    }

    /// The block boundary after `current` (doubling, capped at the
    /// ceiling).
    fn next_target(&self, current: usize) -> usize {
        current.saturating_mul(2).min(self.shot_ceiling)
    }

    /// Whether a tally at a block boundary satisfies the stopping rule.
    fn is_converged(&self, shots: usize, failures: usize) -> bool {
        match self.target_rse {
            None => false,
            Some(target) => {
                shots >= self.first_target()
                    && relative_half_width(failures, shots, self.confidence_z) <= target
            }
        }
    }
}

/// The final tally of one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// The point's identifier.
    pub id: String,
    /// Shots executed (tally covers streams `0..shots`).
    pub shots: usize,
    /// Logical failures among those shots.
    pub failures: usize,
    /// Whether the point stopped early on the adaptive target (`false`
    /// means it ran to the shot ceiling).
    pub converged: bool,
    /// Shots taken over from a resumed checkpoint (0 for a fresh sweep).
    /// Only the remaining `shots - resumed_shots` were timed in this
    /// process.
    pub resumed_shots: usize,
    /// Summed kernel wall-clock across all worker threads, in seconds
    /// (covers only the `shots - resumed_shots` shots run here).
    pub busy_secs: f64,
    /// The `z` quantile used by [`PointReport::wilson`].
    pub confidence_z: f64,
}

impl PointReport {
    /// The point estimate `failures / shots` (0 for an empty tally).
    pub fn failure_rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.failures as f64 / self.shots as f64
    }

    /// The Wilson score interval of the tally.
    pub fn wilson(&self) -> (f64, f64) {
        wilson_interval(self.failures, self.shots, self.confidence_z)
    }

    /// The relative Wilson half-width ([`f64::INFINITY`] for a
    /// zero-failure tally).
    pub fn relative_half_width(&self) -> f64 {
        relative_half_width(self.failures, self.shots, self.confidence_z)
    }

    /// Per-core decoding throughput, shots per busy second, measured over
    /// the shots actually run in this process (checkpoint-resumed shots
    /// carry no timing).  Returns [`f64::NAN`] when no shot ran here (a
    /// fully-resumed point; serialised as `null` in the JSON report) and
    /// [`f64::INFINITY`] when shots ran faster than the timer resolution.
    pub fn shots_per_sec(&self) -> f64 {
        let fresh = self.shots.saturating_sub(self.resumed_shots);
        if self.busy_secs > 0.0 {
            fresh as f64 / self.busy_secs
        } else if fresh > 0 {
            f64::INFINITY
        } else {
            f64::NAN
        }
    }
}

/// Schema version of the `bench_report.json` artifact.  Version 2 renamed
/// the field from `version` to `schema_version` (matching every other
/// engine artifact); readers reject other majors via
/// [`json::check_schema_version`].
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// The result of a sweep: one [`PointReport`] per point (input order) plus
/// sweep-level timing, serialisable as the `bench_report.json` artifact CI
/// tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-point tallies, in the order the points were submitted.
    pub points: Vec<PointReport>,
    /// End-to-end wall clock of the sweep, in seconds.
    pub wall_clock_secs: f64,
    /// Worker threads used.
    pub threads: usize,
    /// The shot floor of the schedule.
    pub shot_floor: usize,
    /// The shot ceiling of the schedule.
    pub shot_ceiling: usize,
    /// The adaptive stopping target, if any.
    pub target_rse: Option<f64>,
    /// Free-form key/value metadata (seed, binary name, …) embedded in the
    /// JSON report.
    pub meta: Vec<(String, String)>,
}

impl SweepReport {
    /// The report of the point with the given id.
    pub fn point(&self, id: &str) -> Option<&PointReport> {
        self.points.iter().find(|p| p.id == id)
    }

    /// Total shots across all points.
    pub fn total_shots(&self) -> usize {
        self.points.iter().map(|p| p.shots).sum()
    }

    /// Total failures across all points.
    pub fn total_failures(&self) -> usize {
        self.points.iter().map(|p| p.failures).sum()
    }

    /// The report as a JSON document (the `bench_report.json` schema,
    /// version [`REPORT_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(REPORT_SCHEMA_VERSION as f64),
            ),
            (
                "wall_clock_secs".into(),
                JsonValue::Number(self.wall_clock_secs),
            ),
            ("threads".into(), JsonValue::Number(self.threads as f64)),
            (
                "shot_floor".into(),
                JsonValue::Number(self.shot_floor as f64),
            ),
            (
                "shot_ceiling".into(),
                JsonValue::Number(self.shot_ceiling as f64),
            ),
            (
                "target_rse".into(),
                self.target_rse.map_or(JsonValue::Null, JsonValue::Number),
            ),
            (
                "total_shots".into(),
                JsonValue::Number(self.total_shots() as f64),
            ),
            (
                "meta".into(),
                JsonValue::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::String(v.clone())))
                        .collect(),
                ),
            ),
            (
                "points".into(),
                JsonValue::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            let (low, high) = p.wilson();
                            JsonValue::Object(vec![
                                ("id".into(), JsonValue::String(p.id.clone())),
                                ("shots".into(), JsonValue::Number(p.shots as f64)),
                                ("failures".into(), JsonValue::Number(p.failures as f64)),
                                ("failure_rate".into(), JsonValue::Number(p.failure_rate())),
                                ("wilson_low".into(), JsonValue::Number(low)),
                                ("wilson_high".into(), JsonValue::Number(high)),
                                ("converged".into(), JsonValue::Bool(p.converged)),
                                (
                                    "resumed_shots".into(),
                                    JsonValue::Number(p.resumed_shots as f64),
                                ),
                                ("busy_secs".into(), JsonValue::Number(p.busy_secs)),
                                ("shots_per_sec".into(), JsonValue::Number(p.shots_per_sec())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the JSON report to `path` atomically (via [`write_atomic`]),
    /// so a killed run leaves either the previous report or the new one on
    /// disk — never a truncated document for the CI perf gate to mis-parse.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] when the file cannot be written.
    pub fn write_json(&self, path: &Path) -> Result<(), EngineError> {
        write_atomic(path, &format!("{}\n", self.to_json()))
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// `.tmp` file first and only a successful write is renamed over `path`.
/// A crash mid-write therefore never leaves a truncated file where a
/// previous (complete) version existed — readers observe either the old
/// document or the new one.  Checkpoints ([`Checkpoint::save`]) and
/// reports ([`SweepReport::write_json`]) both persist through this helper;
/// it is public so other JSON-artifact writers (e.g. the service bench)
/// get the same guarantee.
///
/// # Errors
///
/// Returns [`EngineError::Io`] when the temporary file cannot be written
/// or renamed; `path` is untouched in that case.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), EngineError> {
    let io = |source| EngineError::Io {
        path: path.to_path_buf(),
        source,
    };
    let tmp: PathBuf = path.with_extension("tmp");
    std::fs::write(&tmp, contents).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Shared state of an in-process sharded sweep: the coordinator behind a
/// mutex, plus the bookkeeping that orders checkpoint writes and fans
/// commit notifications out to waiting shard workers.
struct LocalHub<'p> {
    config: &'p SweepConfig,
    state: Mutex<LocalState>,
    /// Signalled on every committed block (and on abort) so workers parked
    /// in [`DeltaSink::wait_for_progress`] re-scan their gates.
    progress: Condvar,
    /// Serialises checkpoint file writes without holding the coordinator
    /// lock; holds the epoch of the last snapshot written so a slow older
    /// write can never clobber a newer one.
    checkpoint_io: Mutex<u64>,
}

struct LocalState {
    coordinator: Coordinator,
    /// Bumped on every committed block; lets a waiting worker detect
    /// commits that happened between its gate scan and its wait.
    generation: u64,
    /// Bumped every time a commit produces a checkpoint snapshot; orders
    /// the file writes.
    checkpoint_epoch: u64,
    /// First checkpoint-write failure, surfaced after the run.
    checkpoint_error: Option<EngineError>,
}

/// The [`DeltaSink`] of one in-process shard: submits into the shared
/// coordinator, persists a checkpoint after every committed block, and
/// blocks on the hub's condvar when its shard is ahead of the commit
/// frontier (adaptive mode's zero-overshoot gate).
struct LocalSink<'p> {
    hub: &'p LocalHub<'p>,
    /// The hub generation observed when this sink last woke up; waiting is
    /// skipped whenever a commit happened since (no missed wake-ups).
    seen_generation: u64,
}

impl LocalSink<'_> {
    fn abort_error() -> EngineError {
        EngineError::CheckpointMismatch {
            reason: "sweep aborted after a checkpoint write failure".into(),
        }
    }
}

impl DeltaSink for LocalSink<'_> {
    fn submit(&mut self, delta: TallyDelta) -> Result<(), EngineError> {
        let mut state = self.hub.state.lock().expect("engine lock poisoned");
        if state.checkpoint_error.is_some() {
            return Err(Self::abort_error());
        }
        let outcome = state.coordinator.submit(&delta)?;
        if !outcome.committed {
            return Ok(());
        }
        state.generation += 1;
        self.hub.progress.notify_all();
        let Some(path) = self.hub.config.checkpoint.as_deref() else {
            return Ok(());
        };
        // Snapshot under the coordinator lock (a small Vec clone), then
        // serialise and write the file outside it so disk latency never
        // stalls the other workers.
        state.checkpoint_epoch += 1;
        let epoch = state.checkpoint_epoch;
        let snapshot = state.coordinator.checkpoint();
        drop(state);
        let mut last_written = self
            .hub
            .checkpoint_io
            .lock()
            .expect("checkpoint lock poisoned");
        if epoch > *last_written {
            if let Err(error) = snapshot.save(path) {
                let mut state = self.hub.state.lock().expect("engine lock poisoned");
                state.checkpoint_error.get_or_insert(error);
                // Wake every waiting worker so the sweep aborts promptly
                // (the user asked for durability; silently losing it — or
                // computing for hours only to discard the tallies at the
                // end — would both be worse).
                self.hub.progress.notify_all();
                return Err(Self::abort_error());
            }
            *last_written = epoch;
        }
        Ok(())
    }

    fn gate(&mut self, point: usize, epoch: usize) -> Result<EpochGate, EngineError> {
        let state = self.hub.state.lock().expect("engine lock poisoned");
        if state.checkpoint_error.is_some() {
            return Err(Self::abort_error());
        }
        Ok(state.coordinator.gate(point, epoch))
    }

    fn wait_for_progress(&mut self) -> Result<(), EngineError> {
        let mut state = self.hub.state.lock().expect("engine lock poisoned");
        // `seen_generation` was recorded before the gate scan that found
        // nothing runnable, so any commit since then — during the scan or
        // right now — returns immediately instead of sleeping through the
        // wake-up.
        while state.generation == self.seen_generation {
            if state.checkpoint_error.is_some() {
                return Err(Self::abort_error());
            }
            if state.coordinator.all_finished() {
                break;
            }
            state = self.hub.progress.wait(state).expect("engine lock poisoned");
        }
        if state.checkpoint_error.is_some() {
            return Err(Self::abort_error());
        }
        self.seen_generation = state.generation;
        Ok(())
    }
}

/// The sweep scheduler: runs a grid of [`SweepPoint`]s under a
/// [`SweepConfig`].  See the [module docs](self) for the scheduling model.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    config: SweepConfig,
}

impl SweepRunner {
    /// Creates a runner.  A zero `shot_ceiling` is allowed and yields
    /// empty tallies (every point finishes immediately).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero, if an explicit thread count is
    /// zero, or if a `target_rse` is not positive.
    pub fn new(config: SweepConfig) -> Self {
        assert!(config.batch_size > 0, "batch_size must be positive");
        assert!(
            config.num_threads != Some(0),
            "num_threads must be positive"
        );
        if let Some(rse) = config.target_rse {
            assert!(rse > 0.0, "target_rse must be positive");
        }
        Self { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Runs the sweep to completion and returns the per-point tallies.
    ///
    /// The runner is an in-process instance of the shard protocol: it
    /// builds a [`ShardPlan`] with one shard per worker thread, drives a
    /// [`ShardWorker`] per thread against a shared local [`Coordinator`],
    /// and takes the final report from the coordinator's merge — the same
    /// code path the `q3de-sweepd`/`q3de-sweepctl` fabric runs across
    /// processes and machines, which is why a distributed sweep is
    /// bit-identical to this one.
    ///
    /// # Errors
    ///
    /// Returns an error when an existing checkpoint cannot be read, does
    /// not belong to this sweep, or cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if two points share an id, or if a worker thread (i.e. a
    /// shot kernel) panics.
    pub fn run(&self, points: Vec<SweepPoint>) -> Result<SweepReport, EngineError> {
        let config = &self.config;
        for (i, a) in points.iter().enumerate() {
            for b in &points[..i] {
                assert!(a.id() != b.id(), "duplicate sweep point id '{}'", a.id());
            }
        }
        let fingerprint = config.fingerprint(&points);
        let resumed = self.load_checkpoint(&fingerprint, &points)?;
        let baselines: Option<Vec<(usize, usize)>> = resumed
            .as_ref()
            .map(|cp| cp.points.iter().map(|p| (p.shots, p.failures)).collect());

        let threads = config
            .num_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);

        let plan = ShardPlan::new(config, &points, baselines.as_deref(), threads);
        let hub = LocalHub {
            config,
            state: Mutex::new(LocalState {
                coordinator: Coordinator::new(plan.clone()),
                generation: 0,
                checkpoint_epoch: 0,
                checkpoint_error: None,
            }),
            progress: Condvar::new(),
            checkpoint_io: Mutex::new(0),
        };

        let start = Instant::now();
        // Probe the checkpoint path up front (and persist the starting
        // state): an unwritable path fails here, before any shot runs,
        // instead of after hours of compute.
        if let Some(path) = config.checkpoint.as_deref() {
            let state = hub.state.lock().expect("engine lock poisoned");
            state.coordinator.checkpoint().save(path)?;
        }
        let has_work = {
            let state = hub.state.lock().expect("engine lock poisoned");
            !state.coordinator.all_finished()
        };
        if has_work {
            let worker_errors: Vec<EngineError> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|shard| {
                        let plan = &plan;
                        let points = &points;
                        let hub = &hub;
                        scope.spawn(move || {
                            let mut sink = LocalSink {
                                hub,
                                seen_generation: 0,
                            };
                            ShardWorker::new(plan, shard).run(points, &[], &mut sink, |_| {})
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|handle| handle.join().expect("sweep worker panicked").err())
                    .collect()
            });
            let mut state = hub.state.lock().expect("engine lock poisoned");
            if let Some(error) = state.checkpoint_error.take() {
                return Err(error);
            }
            if let Some(error) = worker_errors.into_iter().next() {
                return Err(error);
            }
            drop(state);
        }
        let wall_clock_secs = start.elapsed().as_secs_f64();

        let state = hub.state.into_inner().expect("engine lock poisoned");
        state.coordinator.report(wall_clock_secs, threads)
    }

    /// Loads and validates the checkpoint configured for this sweep, if
    /// resuming.  Returns tallies re-ordered to match `points`.
    fn load_checkpoint(
        &self,
        fingerprint: &str,
        points: &[SweepPoint],
    ) -> Result<Option<Checkpoint>, EngineError> {
        let Some(path) = self.config.checkpoint.as_deref() else {
            return Ok(None);
        };
        if !self.config.resume || !path.exists() {
            return Ok(None);
        }
        let checkpoint = Checkpoint::load(path)?;
        if checkpoint.fingerprint != fingerprint {
            return Err(EngineError::CheckpointMismatch {
                reason: format!(
                    "fingerprint mismatch (checkpoint '{}' vs sweep '{fingerprint}')",
                    checkpoint.fingerprint
                ),
            });
        }
        let mut ordered = Vec::with_capacity(points.len());
        for point in points {
            let entry = checkpoint
                .points
                .iter()
                .find(|p| p.id == point.id())
                .ok_or_else(|| EngineError::CheckpointMismatch {
                    reason: format!("checkpoint has no tally for point '{}'", point.id()),
                })?;
            if entry.shots > self.config.shot_ceiling {
                return Err(EngineError::CheckpointMismatch {
                    reason: format!(
                        "point '{}' already has {} shots, above the ceiling {}",
                        point.id(),
                        entry.shots,
                        self.config.shot_ceiling
                    ),
                });
            }
            // Any resumed shot count is accepted as the point's current
            // block boundary (the schedule continues doubling from it):
            // checkpoints of *this* schedule are always at its own
            // boundaries, which preserves bit-identity with an
            // uninterrupted run, while checkpoints of a smaller finished
            // sweep land wherever its old ceiling was and simply extend.
            ordered.push(entry.clone());
        }
        Ok(Some(Checkpoint {
            fingerprint: checkpoint.fingerprint,
            points: ordered,
        }))
    }
}

/// Whether `shots` is one of the schedule's block boundaries
/// (`floor, 2·floor, 4·floor, …, ceiling`).
#[cfg(test)]
fn is_block_boundary(config: &SweepConfig, shots: usize) -> bool {
    let mut boundary = config.first_target();
    loop {
        if shots == boundary {
            return true;
        }
        if shots < boundary || boundary == config.shot_ceiling {
            return false;
        }
        boundary = config.next_target(boundary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A deterministic toy kernel: stream hash against a threshold.
    fn noisy_kernel(rate_per_64: u64) -> impl Fn(u64) -> bool + Send + Sync {
        move |stream| stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 64 < rate_per_64
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("q3de-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fixed_sweep_runs_every_stream_exactly_once() {
        let executed = Arc::new(AtomicUsize::new(0));
        let executed_in = Arc::clone(&executed);
        let points = vec![SweepPoint::new("count", move |stream: u64| {
            executed_in.fetch_add(1, Ordering::SeqCst);
            stream < 10
        })];
        let report = SweepRunner::new(SweepConfig::fixed(101).with_batch_size(7))
            .run(points)
            .unwrap();
        assert_eq!(executed.load(Ordering::SeqCst), 101);
        let point = report.point("count").unwrap();
        assert_eq!((point.shots, point.failures), (101, 10));
        assert!(!point.converged);
        assert_eq!(report.total_shots(), 101);
        assert_eq!(report.total_failures(), 10);
    }

    #[test]
    fn results_are_independent_of_thread_count_and_batch_size() {
        let run = |threads: usize, batch: usize| {
            let points = vec![
                SweepPoint::new("a", noisy_kernel(13)),
                SweepPoint::new("b", noisy_kernel(3)),
                SweepPoint::new("c", noisy_kernel(0)),
            ];
            let config = SweepConfig::adaptive(32, 512, 0.2)
                .with_threads(threads)
                .with_batch_size(batch);
            let report = SweepRunner::new(config).run(points).unwrap();
            report
                .points
                .iter()
                .map(|p| (p.id.clone(), p.shots, p.failures, p.converged))
                .collect::<Vec<_>>()
        };
        let reference = run(1, 32);
        assert_eq!(run(4, 32), reference);
        assert_eq!(run(3, 5), reference);
        assert_eq!(run(8, 100), reference);
    }

    #[test]
    fn adaptive_mode_stops_converged_points_early_and_rare_points_late() {
        let points = vec![
            SweepPoint::new("common", noisy_kernel(32)), // rate 0.5: converges fast
            SweepPoint::new("never", noisy_kernel(0)),   // no failures: runs to ceiling
        ];
        let report = SweepRunner::new(SweepConfig::adaptive(64, 4096, 0.25))
            .run(points)
            .unwrap();
        let common = report.point("common").unwrap();
        let never = report.point("never").unwrap();
        assert!(common.converged);
        assert!(common.shots < 4096, "converged point stopped at floor-ish");
        assert!(!never.converged);
        assert_eq!(never.shots, 4096, "zero-failure point must hit the ceiling");
        assert!(never.relative_half_width().is_infinite());
    }

    #[test]
    fn adaptive_tally_is_a_prefix_of_the_fixed_tally() {
        // The adaptive run executes streams 0..n for some boundary n, so
        // its tally must equal the fixed run's tally restricted to 0..n.
        let kernel = noisy_kernel(8);
        let adaptive = SweepRunner::new(SweepConfig::adaptive(32, 2048, 0.3))
            .run(vec![SweepPoint::new("p", noisy_kernel(8))])
            .unwrap();
        let point = adaptive.point("p").unwrap();
        let expected = (0..point.shots as u64).filter(|&s| kernel(s)).count();
        assert_eq!(point.failures, expected);
        assert!(is_block_boundary(
            &SweepConfig::adaptive(32, 2048, 0.3),
            point.shots
        ));
    }

    #[test]
    fn checkpointed_sweep_resumes_bit_identically() {
        let path = temp_path("resume.json");
        let _ = std::fs::remove_file(&path);
        let make_points = || {
            vec![
                SweepPoint::new("a", noisy_kernel(6)),
                SweepPoint::new("b", noisy_kernel(1)),
            ]
        };
        // Uninterrupted reference: 512 shots per point, floor 64.
        let full_config = SweepConfig {
            shot_floor: 64,
            ..SweepConfig::fixed(512)
        };
        let reference = SweepRunner::new(full_config.clone())
            .run(make_points())
            .unwrap();
        // "Killed" run: same floor, ceiling 64 → checkpoint at the first
        // boundary, then resume with the full ceiling.
        let partial = SweepConfig {
            shot_floor: 64,
            ..SweepConfig::fixed(64)
        }
        .with_checkpoint(&path);
        SweepRunner::new(partial).run(make_points()).unwrap();
        let resumed = SweepRunner::new(full_config.with_checkpoint(&path).with_resume(true))
            .run(make_points())
            .unwrap();
        for (r, f) in resumed.points.iter().zip(&reference.points) {
            assert_eq!(
                (r.id.as_str(), r.shots, r.failures),
                (f.id.as_str(), f.shots, f.failures)
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoints_resume_across_batch_sizes_and_thread_counts() {
        // The fingerprint deliberately excludes `batch_size` and the
        // thread/shard count: a committed tally is a pure function of its
        // stream prefix `0..shots` and block boundaries depend only on the
        // floor and ceiling, so a checkpoint written under one
        // batch/thread setting must resume bit-identically under any
        // other.  This is the proof the fingerprint doc promises.
        let path = temp_path("xbatch.json");
        let _ = std::fs::remove_file(&path);
        let full = SweepConfig {
            shot_floor: 64,
            ..SweepConfig::fixed(512)
        };
        let reference = SweepRunner::new(full.clone())
            .run(vec![SweepPoint::new("a", noisy_kernel(6))])
            .unwrap();
        // Partial run with batch 7 on 1 thread …
        let partial = SweepConfig {
            shot_floor: 64,
            ..SweepConfig::fixed(128)
        }
        .with_batch_size(7)
        .with_threads(1)
        .with_checkpoint(&path);
        SweepRunner::new(partial)
            .run(vec![SweepPoint::new("a", noisy_kernel(6))])
            .unwrap();
        // … resumed with batch 100 on 3 threads.
        let resumed = SweepRunner::new(
            full.with_batch_size(100)
                .with_threads(3)
                .with_checkpoint(&path)
                .with_resume(true),
        )
        .run(vec![SweepPoint::new("a", noisy_kernel(6))])
        .unwrap();
        let (r, f) = (resumed.point("a").unwrap(), reference.point("a").unwrap());
        assert_eq!((r.shots, r.failures), (f.shots, f.failures));
        assert_eq!(r.resumed_shots, 128);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_shot_sweeps_finish_immediately_with_empty_tallies() {
        let report = SweepRunner::new(SweepConfig::fixed(0))
            .run(vec![SweepPoint::new("x", noisy_kernel(6))])
            .unwrap();
        let point = report.point("x").unwrap();
        assert_eq!((point.shots, point.failures), (0, 0));
        assert_eq!(point.failure_rate(), 0.0);
        assert!(!point.converged);
    }

    #[test]
    fn unwritable_checkpoint_path_fails_before_any_shot_runs() {
        let executed = Arc::new(AtomicUsize::new(0));
        let executed_in = Arc::clone(&executed);
        let config =
            SweepConfig::fixed(64).with_checkpoint("/nonexistent-q3de-dir/checkpoint.json");
        let err = SweepRunner::new(config)
            .run(vec![SweepPoint::new("x", move |stream: u64| {
                executed_in.fetch_add(1, Ordering::SeqCst);
                noisy_kernel(6)(stream)
            })])
            .unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }), "{err}");
        assert_eq!(
            executed.load(Ordering::SeqCst),
            0,
            "the up-front probe must fail before any kernel runs"
        );
    }

    #[test]
    fn finished_sweep_extends_from_a_non_aligned_ceiling() {
        // fixed(100) checkpoints its final tally at 100 shots — not a
        // boundary of the fixed(250) schedule (64, 128, 250) — and resuming
        // with the larger budget must still work and match a fresh run.
        let path = temp_path("extend.json");
        let _ = std::fs::remove_file(&path);
        SweepRunner::new(SweepConfig::fixed(100).with_checkpoint(&path))
            .run(vec![SweepPoint::new("a", noisy_kernel(6))])
            .unwrap();
        let extended = SweepRunner::new(
            SweepConfig::fixed(250)
                .with_checkpoint(&path)
                .with_resume(true),
        )
        .run(vec![SweepPoint::new("a", noisy_kernel(6))])
        .unwrap();
        let fresh = SweepRunner::new(SweepConfig::fixed(250))
            .run(vec![SweepPoint::new("a", noisy_kernel(6))])
            .unwrap();
        let (e, f) = (extended.point("a").unwrap(), fresh.point("a").unwrap());
        assert_eq!((e.shots, e.failures), (f.shots, f.failures));
        assert_eq!(e.resumed_shots, 100);
        assert_eq!(f.resumed_shots, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let path = temp_path("mismatch.json");
        Checkpoint {
            fingerprint: "something else".into(),
            points: vec![CheckpointPoint {
                id: "a".into(),
                shots: 64,
                failures: 1,
            }],
        }
        .save(&path)
        .unwrap();
        let config = SweepConfig::fixed(128)
            .with_checkpoint(&path)
            .with_resume(true);
        let err = SweepRunner::new(config)
            .run(vec![SweepPoint::new("a", noisy_kernel(1))])
            .unwrap_err();
        assert!(
            matches!(err, EngineError::CheckpointMismatch { .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fully_complete_checkpoint_resumes_without_rerunning_kernels() {
        let path = temp_path("complete.json");
        let _ = std::fs::remove_file(&path);
        let config = SweepConfig::fixed(64).with_checkpoint(&path);
        SweepRunner::new(config.clone())
            .run(vec![SweepPoint::new("a", noisy_kernel(6))])
            .unwrap();
        let executed = Arc::new(AtomicUsize::new(0));
        let executed_in = Arc::clone(&executed);
        let resumed = SweepRunner::new(config.with_resume(true))
            .run(vec![SweepPoint::new("a", move |stream: u64| {
                executed_in.fetch_add(1, Ordering::SeqCst);
                noisy_kernel(6)(stream)
            })])
            .unwrap();
        assert_eq!(executed.load(Ordering::SeqCst), 0, "no shot may re-run");
        assert_eq!(resumed.point("a").unwrap().shots, 64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_point_matches_estimate_parallel() {
        use rand_chacha::ChaCha8Rng;
        let config = MemoryExperimentConfig::new(3, 2e-2);
        let experiment = MemoryExperiment::new(config).unwrap();
        let expected =
            experiment.estimate_parallel::<ChaCha8Rng>(96, DecodingStrategy::MbbeFree, 0xBEEF);
        let report = SweepRunner::new(SweepConfig::fixed(96))
            .run(vec![SweepPoint::from_memory::<ChaCha8Rng>(
                "mem",
                config,
                DecodingStrategy::MbbeFree,
                0xBEEF,
            )
            .unwrap()])
            .unwrap();
        assert_eq!(report.point("mem").unwrap().failures, expected.failures);
    }

    #[test]
    fn packed_memory_point_matches_estimate_packed() {
        use rand_chacha::ChaCha8Rng;
        let config = MemoryExperimentConfig::new(3, 2e-2);
        let experiment = MemoryExperiment::new(config).unwrap();
        // a shot count straddling a group boundary exercises tail masking
        let expected =
            experiment.estimate_packed::<ChaCha8Rng>(150, DecodingStrategy::MbbeFree, 0xBEEF);
        let report = SweepRunner::new(SweepConfig::fixed(150))
            .run(vec![SweepPoint::from_memory_packed::<ChaCha8Rng>(
                "mem_packed",
                config,
                DecodingStrategy::MbbeFree,
                0xBEEF,
            )
            .unwrap()])
            .unwrap();
        assert_eq!(
            report.point("mem_packed").unwrap().failures,
            expected.failures
        );
    }

    #[test]
    fn packed_points_are_batch_size_independent() {
        // A deterministic toy group kernel: the failure mask is a hash of
        // the group index, so any misrouted lane shows up in the tally.
        let group_kernel = |group: u64| group.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ group << 7;
        let reference: u32 = (0..3u64) // 155 shots = 2 full groups + 27 lanes
            .map(|g| {
                let mask = if g == 2 { (1u64 << 27) - 1 } else { u64::MAX };
                (group_kernel(g) & mask).count_ones()
            })
            .sum();
        for (threads, batch) in [(1, 64), (4, 64), (3, 7), (2, 100), (1, 1)] {
            let config = SweepConfig::fixed(155)
                .with_threads(threads)
                .with_batch_size(batch);
            let report = SweepRunner::new(config)
                .run(vec![SweepPoint::new_packed("p", group_kernel)])
                .unwrap();
            assert_eq!(
                report.point("p").unwrap().failures,
                reference as usize,
                "threads {threads} batch {batch}"
            );
        }
    }

    #[test]
    fn packed_point_run_extracts_single_lanes() {
        let group_kernel = |group: u64| group + 1; // bit 0 set in group 0, bit 1 in group 1 …
        let point = SweepPoint::new_packed("p", group_kernel);
        assert!(point.run(0));
        assert!(!point.run(1));
        assert!(point.run(65));
        assert_eq!(
            point.run_range(0, 130),
            (0..130).filter(|&s| point.run(s)).count()
        );
        assert_eq!(point.run_range(70, 0), 0);
        assert_eq!(
            point.run_range(63, 3),
            (63..66).filter(|&s| point.run(s)).count()
        );
    }

    #[test]
    fn chip_point_matches_estimate_parallel() {
        use rand_chacha::ChaCha8Rng;
        let config = ChipMemoryExperimentConfig::new(2, 2, MemoryExperimentConfig::new(3, 2e-2));
        let experiment = ChipMemoryExperiment::new(config).unwrap();
        let expected =
            experiment.estimate_parallel::<ChaCha8Rng>(48, DecodingStrategy::MbbeFree, 0xC41F);
        let report = SweepRunner::new(SweepConfig::fixed(48))
            .run(vec![SweepPoint::from_chip::<ChaCha8Rng>(
                "chip",
                config,
                DecodingStrategy::MbbeFree,
                0xC41F,
            )
            .unwrap()])
            .unwrap();
        assert_eq!(
            report.point("chip").unwrap().failures,
            expected.chip_failures
        );
    }

    #[test]
    fn report_serialises_and_reparses() {
        let report = SweepRunner::new(SweepConfig::fixed(40))
            .run(vec![SweepPoint::new("x", noisy_kernel(10))])
            .unwrap();
        let json = report.to_json();
        let text = json.to_string();
        let parsed = JsonValue::parse(&text).unwrap();
        let points = parsed.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].get("id").unwrap().as_str(), Some("x"));
        assert_eq!(
            points[0].get("shots").unwrap().as_usize(),
            Some(report.points[0].shots)
        );
        assert_eq!(
            parsed.get("schema_version").unwrap().as_usize(),
            Some(REPORT_SCHEMA_VERSION as usize)
        );
        json::check_schema_version(&parsed, REPORT_SCHEMA_VERSION, "report").unwrap();
    }

    #[test]
    fn report_write_is_atomic_never_partial() {
        // A pre-existing report must stay intact when a new write cannot
        // complete: the writer goes through a sibling `.tmp` file, so a
        // failure before the rename leaves the old document untouched
        // (readers see old or new, never a truncated hybrid).  Blocking the
        // temporary path with a directory forces exactly that failure.
        let path = temp_path("atomic_report.json");
        let tmp = path.with_extension("tmp");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&tmp);
        let report = SweepRunner::new(SweepConfig::fixed(32))
            .run(vec![SweepPoint::new("x", noisy_kernel(10))])
            .unwrap();
        report.write_json(&path).unwrap();
        let old = std::fs::read_to_string(&path).unwrap();
        JsonValue::parse(&old).expect("the first report must be complete");

        std::fs::create_dir_all(&tmp).unwrap(); // sabotage the tmp slot
        let err = report.write_json(&path).unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }), "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            old,
            "a failed write must leave the previous report byte-identical"
        );

        std::fs::remove_dir_all(&tmp).unwrap();
        report.write_json(&path).unwrap(); // and a clean retry succeeds
        JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate sweep point id")]
    fn duplicate_ids_are_rejected() {
        let _ = SweepRunner::new(SweepConfig::fixed(1)).run(vec![
            SweepPoint::new("same", noisy_kernel(1)),
            SweepPoint::new("same", noisy_kernel(1)),
        ]);
    }

    #[test]
    fn block_boundaries_double_from_the_floor() {
        let config = SweepConfig::adaptive(50, 500, 0.1);
        for boundary in [50usize, 100, 200, 400, 500] {
            assert!(is_block_boundary(&config, boundary), "{boundary}");
        }
        for not in [1usize, 49, 51, 99, 300, 499] {
            assert!(!is_block_boundary(&config, not), "{not}");
        }
    }
}
