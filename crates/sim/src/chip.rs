//! The chip-level memory experiment: N patches idling together under
//! chip-coordinate cosmic-ray strikes.
//!
//! A *chip shot* runs one memory shot per patch (the
//! [`MemoryExperiment`] kernel, one independent RNG stream per patch) and
//! fails when **any** patch suffers a logical error — the system failure
//! criterion of the paper's Secs. V/VII evaluation.  Strikes are placed in
//! chip coordinates and fanned out into per-patch regions via
//! [`ChipStrike::fan_out`], so a single burst straddling a patch boundary
//! degrades several patches of the same shot.  Per-patch failure counts are
//! aggregated with [`run_shots_fold`](crate::run_shots_fold), the fold
//! variant of the shot runner.
//!
//! Each per-patch [`MemoryExperiment`] owns a pool of persistent decoder
//! contexts (see [`q3de_decoder::ContextPool`]): a chip sweep constructs
//! decoder state once per worker thread per patch, not once per shot, and
//! the [`chip_patch_seed`] stream schedule keeps per-patch results exactly
//! reproducible regardless of which warm context decodes a given shot.

use crate::memory::{DecodingStrategy, MemoryExperiment, MemoryExperimentConfig};
use q3de_lattice::{ChipLayout, LatticeError, PatchIndex};
use q3de_noise::{AnomalousRegion, ChipStrike};
use rand::{Rng, SeedableRng};

/// How strikes are injected into the chip shots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChipStrikePolicy {
    /// No strike: every patch idles at the base error rate.
    None,
    /// The same fixed strike (chip coordinates) in every shot — the
    /// deterministic setting used by seeded regression tests.
    Fixed(ChipStrike),
    /// Each shot independently suffers a strike with the given probability,
    /// uniformly placed on the chip plane — the Monte-Carlo setting behind
    /// the `fig_system` sweep.  The placement draws from a dedicated RNG
    /// stream, so patch noise streams are identical with and without
    /// strikes.
    Random {
        /// Probability that a shot contains a strike (≈ `N·f_ano·τ_cyc·rounds`
        /// for short windows).
        probability: f64,
        /// Anomaly size `d_ano` of a sampled strike.
        size: usize,
        /// Error rate `p_ano` inside a sampled strike.
        rate: f64,
    },
}

/// Configuration of a [`ChipMemoryExperiment`].
#[derive(Debug, Clone, Copy)]
pub struct ChipMemoryExperimentConfig {
    /// Patch rows on the chip.
    pub patch_rows: usize,
    /// Patch columns on the chip.
    pub patch_cols: usize,
    /// The per-patch memory experiment (distance, rate, rounds, decoder).
    /// Its own `anomaly` field must stay `None`: chip-level strikes come in
    /// through the [`ChipStrikePolicy`].
    pub patch: MemoryExperimentConfig,
    /// The strike injection policy.
    pub strike: ChipStrikePolicy,
}

impl ChipMemoryExperimentConfig {
    /// A strike-free chip of `patch_rows × patch_cols` patches.
    pub fn new(patch_rows: usize, patch_cols: usize, patch: MemoryExperimentConfig) -> Self {
        Self {
            patch_rows,
            patch_cols,
            patch,
            strike: ChipStrikePolicy::None,
        }
    }

    /// Sets the strike policy, builder style.
    pub fn with_strike(mut self, strike: ChipStrikePolicy) -> Self {
        self.strike = strike;
        self
    }
}

/// Aggregated chip-level Monte-Carlo estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipEstimate {
    /// Number of chip shots simulated.
    pub shots: usize,
    /// Shots in which at least one patch failed logically.
    pub chip_failures: usize,
    /// Per-patch logical failure counts, in row-major patch order.
    pub per_patch_failures: Vec<usize>,
    /// Shots whose strike policy produced a strike (independent of the
    /// decoding strategy: `MbbeFree` shots still count as struck, they just
    /// ignore the regions).
    pub struck_shots: usize,
    /// Number of noisy rounds per shot.
    pub rounds: usize,
}

impl ChipEstimate {
    /// System (chip) logical failure rate per shot.
    pub fn chip_failure_rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.chip_failures as f64 / self.shots as f64
    }

    /// Per-patch logical failure rates, in row-major patch order.
    pub fn per_patch_rates(&self) -> Vec<f64> {
        if self.shots == 0 {
            return vec![0.0; self.per_patch_failures.len()];
        }
        self.per_patch_failures
            .iter()
            .map(|&f| f as f64 / self.shots as f64)
            .collect()
    }

    /// The worst per-patch failure rate.
    pub fn max_patch_rate(&self) -> f64 {
        self.per_patch_rates().into_iter().fold(0.0, f64::max)
    }
}

/// The RNG seed of one patch's stream within one chip shot.
///
/// Exposed so N independent single-patch runs can reproduce a chip run
/// patch for patch: seeding [`MemoryExperiment::run_shot`] with
/// `chip_patch_seed(base, stream, patch)` replays exactly the stream the
/// chip experiment hands that patch in shot `stream`.
pub fn chip_patch_seed(base_seed: u64, stream: u64, patch_linear: usize) -> u64 {
    crate::shot_stream_seed(base_seed, stream)
        ^ (patch_linear as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// The RNG seed of a shot's strike-placement stream (disjoint from every
/// patch stream by construction).
fn strike_seed(base_seed: u64, stream: u64) -> u64 {
    crate::shot_stream_seed(base_seed, stream) ^ 0xA076_1D64_78BD_642F
}

/// A reusable chip-level memory experiment for one parameter point.
#[derive(Debug, Clone)]
pub struct ChipMemoryExperiment {
    config: ChipMemoryExperimentConfig,
    layout: ChipLayout,
    patches: Vec<MemoryExperiment>,
    /// Per-patch fixed regions (row-major), pre-fanned-out for
    /// [`ChipStrikePolicy::Fixed`].
    fixed_regions: Vec<Vec<AnomalousRegion>>,
}

impl ChipMemoryExperiment {
    /// Builds the chip: layout plus one strike-free [`MemoryExperiment`]
    /// per patch (fixed strikes are fanned out once, up front).
    ///
    /// # Errors
    ///
    /// Returns an error if the patch grid is empty, the distance is
    /// invalid, or the patch configuration carries its own anomaly.
    pub fn new(config: ChipMemoryExperimentConfig) -> Result<Self, LatticeError> {
        if config.patch.anomaly.is_some() {
            return Err(LatticeError::InvalidChipLayout {
                reason: "chip experiments inject strikes via ChipStrikePolicy, \
                         not per-patch AnomalyInjection"
                    .into(),
            });
        }
        let layout = ChipLayout::new(
            config.patch_rows,
            config.patch_cols,
            config.patch.distance,
            0,
        )?;
        let patches: Vec<MemoryExperiment> = (0..layout.num_patches())
            .map(|_| MemoryExperiment::new(config.patch))
            .collect::<Result<_, _>>()?;
        let mut fixed_regions = vec![Vec::new(); layout.num_patches()];
        if let ChipStrikePolicy::Fixed(strike) = config.strike {
            for (patch, region) in strike.fan_out(&layout) {
                fixed_regions[layout.linear_index(patch)].push(region);
            }
        }
        Ok(Self {
            config,
            layout,
            patches,
            fixed_regions,
        })
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ChipMemoryExperimentConfig {
        &self.config
    }

    /// The chip geometry.
    pub fn layout(&self) -> &ChipLayout {
        &self.layout
    }

    /// Number of patches on the chip.
    pub fn num_patches(&self) -> usize {
        self.patches.len()
    }

    /// The per-patch experiment at a row-major linear index.
    pub fn patch(&self, linear: usize) -> &MemoryExperiment {
        &self.patches[linear]
    }

    /// The patches a fixed strike degrades (empty under other policies).
    pub fn struck_patches(&self) -> Vec<PatchIndex> {
        self.fixed_regions
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, _)| self.layout.patch_at(i))
            .collect()
    }

    /// The per-shot strike fan-out under the configured policy: `None`
    /// draws nothing, `Fixed` returns the precomputed fan-out, `Random`
    /// consumes `strike_rng` to decide and place this shot's strike.
    /// Returns one region list per patch (row-major) plus whether a strike
    /// was active.
    fn shot_regions<R: Rng + ?Sized>(
        &self,
        strike_rng: &mut R,
    ) -> (Vec<Vec<AnomalousRegion>>, bool) {
        match self.config.strike {
            ChipStrikePolicy::None => (vec![Vec::new(); self.num_patches()], false),
            ChipStrikePolicy::Fixed(_) => {
                let struck = self.fixed_regions.iter().any(|r| !r.is_empty());
                (self.fixed_regions.clone(), struck)
            }
            ChipStrikePolicy::Random {
                probability,
                size,
                rate,
            } => {
                if strike_rng.gen::<f64>() >= probability {
                    return (vec![Vec::new(); self.num_patches()], false);
                }
                // Like the single-patch AnomalyInjection, the burst covers
                // the whole shot window.
                let rounds = self.config.patch.effective_rounds() as u64;
                let strike =
                    ChipStrike::sample_uniform(&self.layout, size, 0, rounds + 1, rate, strike_rng);
                let mut regions = vec![Vec::new(); self.num_patches()];
                for (patch, region) in strike.fan_out(&self.layout) {
                    regions[self.layout.linear_index(patch)].push(region);
                }
                (regions, true)
            }
        }
    }

    /// Runs one chip shot for stream index `stream`: one memory shot per
    /// patch, each on its own [`chip_patch_seed`] RNG stream.  Returns the
    /// per-patch logical failures (row-major) and whether the shot was
    /// struck.
    pub fn run_chip_shot<R>(
        &self,
        strategy: DecodingStrategy,
        base_seed: u64,
        stream: u64,
    ) -> (Vec<bool>, bool)
    where
        R: Rng + SeedableRng,
    {
        let mut strike_rng = R::seed_from_u64(strike_seed(base_seed, stream));
        let (regions, struck) = self.shot_regions(&mut strike_rng);
        let failures = self
            .patches
            .iter()
            .enumerate()
            .map(|(i, patch)| {
                let mut rng = R::seed_from_u64(chip_patch_seed(base_seed, stream, i));
                patch
                    .run_shot_with(&regions[i], strategy, &mut rng)
                    .logical_failure
            })
            .collect();
        (failures, struck)
    }

    /// Monte-Carlo estimate over all available cores via
    /// [`crate::run_shots_fold_auto`].  Stream indices are drawn from a
    /// global counter exactly like
    /// [`MemoryExperiment::estimate_parallel`], so the aggregate counts are
    /// machine-independent for a fixed `base_seed`.
    pub fn estimate_parallel<R>(
        &self,
        shots: usize,
        strategy: DecodingStrategy,
        base_seed: u64,
    ) -> ChipEstimate
    where
        R: Rng + SeedableRng,
    {
        #[derive(Clone)]
        struct Acc {
            chip_failures: usize,
            per_patch: Vec<usize>,
            struck: usize,
        }
        let next_stream = std::sync::atomic::AtomicU64::new(0);
        let acc = crate::run_shots_fold_auto(
            shots,
            Acc {
                chip_failures: 0,
                per_patch: vec![0; self.num_patches()],
                struck: 0,
            },
            |_, _, acc: &mut Acc| {
                let stream = next_stream.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let (failures, struck) = self.run_chip_shot::<R>(strategy, base_seed, stream);
                if failures.iter().any(|&f| f) {
                    acc.chip_failures += 1;
                }
                for (slot, &failed) in acc.per_patch.iter_mut().zip(&failures) {
                    *slot += usize::from(failed);
                }
                acc.struck += usize::from(struck);
            },
            |mut a, b| {
                a.chip_failures += b.chip_failures;
                for (x, y) in a.per_patch.iter_mut().zip(b.per_patch) {
                    *x += y;
                }
                a.struck += b.struck;
                a
            },
        );
        ChipEstimate {
            shots,
            chip_failures: acc.chip_failures,
            per_patch_failures: acc.per_patch,
            struck_shots: acc.struck,
            rounds: self.config.patch.effective_rounds(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q3de_lattice::Coord;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quiet_chip_matches_independent_single_patch_runs_exactly() {
        let patch = MemoryExperimentConfig::new(3, 2e-2);
        let chip = ChipMemoryExperiment::new(ChipMemoryExperimentConfig::new(2, 2, patch)).unwrap();
        let shots = 40usize;
        let base_seed = 0xC41Fu64;
        let estimate =
            chip.estimate_parallel::<ChaCha8Rng>(shots, DecodingStrategy::MbbeFree, base_seed);
        assert_eq!(estimate.shots, shots);
        assert_eq!(estimate.struck_shots, 0);

        // Replay every patch as an independent single-patch experiment on
        // the same per-patch streams: counts must match exactly.
        let single = MemoryExperiment::new(patch).unwrap();
        for patch_i in 0..4 {
            let failures = (0..shots as u64)
                .filter(|&stream| {
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(chip_patch_seed(base_seed, stream, patch_i));
                    single
                        .run_shot(DecodingStrategy::MbbeFree, &mut rng)
                        .logical_failure
                })
                .count();
            assert_eq!(
                estimate.per_patch_failures[patch_i], failures,
                "patch {patch_i}"
            );
        }
        // The chip fails whenever any patch fails, so the chip rate bounds
        // every per-patch rate.
        assert!(estimate.chip_failure_rate() >= estimate.max_patch_rate());
    }

    #[test]
    fn fixed_straddling_strike_degrades_both_patches() {
        let patch = MemoryExperimentConfig::new(7, 4e-3).with_rounds(14);
        // pitch 14: a size-4 burst over chip columns 7..15 covers patch 0
        // columns 7..12 and hangs into patch 1 at local columns 0.. .
        let strike = ChipStrike::new(Coord::new(3, 7), 4, 0, 100, 0.5);
        let config = ChipMemoryExperimentConfig::new(1, 2, patch)
            .with_strike(ChipStrikePolicy::Fixed(strike));
        let chip = ChipMemoryExperiment::new(config).unwrap();
        assert_eq!(
            chip.struck_patches(),
            vec![PatchIndex::new(0, 0), PatchIndex::new(0, 1)]
        );
        let shots = 60;
        let blind = chip.estimate_parallel::<ChaCha8Rng>(shots, DecodingStrategy::Blind, 3);
        let free = chip.estimate_parallel::<ChaCha8Rng>(shots, DecodingStrategy::MbbeFree, 3);
        assert_eq!(blind.struck_shots, shots);
        // struck_shots reports the policy, not the strategy: MbbeFree shots
        // are struck too, they just decode as if the regions were absent.
        assert_eq!(free.struck_shots, shots);
        assert!(
            blind.chip_failure_rate() > free.chip_failure_rate(),
            "a straddling burst must raise the chip failure rate \
             (blind {} vs free {})",
            blind.chip_failure_rate(),
            free.chip_failure_rate()
        );
        // Both struck patches individually degrade relative to their
        // strike-free selves.
        for i in 0..2 {
            assert!(
                blind.per_patch_failures[i] >= free.per_patch_failures[i],
                "patch {i}: blind {} < free {}",
                blind.per_patch_failures[i],
                free.per_patch_failures[i]
            );
        }
    }

    #[test]
    fn random_strikes_hit_roughly_the_configured_fraction_of_shots() {
        let patch = MemoryExperimentConfig::new(3, 1e-3);
        let config =
            ChipMemoryExperimentConfig::new(2, 2, patch).with_strike(ChipStrikePolicy::Random {
                probability: 0.5,
                size: 2,
                rate: 0.5,
            });
        let chip = ChipMemoryExperiment::new(config).unwrap();
        let estimate = chip.estimate_parallel::<ChaCha8Rng>(200, DecodingStrategy::Blind, 11);
        // Binomial(200, 0.5): 3σ ≈ 21.
        assert!(
            (estimate.struck_shots as i64 - 100).abs() < 25,
            "struck {} of 200 shots",
            estimate.struck_shots
        );
        // Determinism: same seed, same estimate.
        let again = chip.estimate_parallel::<ChaCha8Rng>(200, DecodingStrategy::Blind, 11);
        assert_eq!(estimate, again);
    }

    #[test]
    fn per_patch_anomaly_config_is_rejected() {
        use crate::memory::AnomalyInjection;
        let patch =
            MemoryExperimentConfig::new(3, 1e-3).with_anomaly(AnomalyInjection::centered(1, 0.5));
        assert!(ChipMemoryExperiment::new(ChipMemoryExperimentConfig::new(1, 1, patch)).is_err());
    }

    #[test]
    fn estimate_accessors_are_consistent() {
        let est = ChipEstimate {
            shots: 100,
            chip_failures: 20,
            per_patch_failures: vec![5, 15, 0, 10],
            struck_shots: 30,
            rounds: 5,
        };
        assert!((est.chip_failure_rate() - 0.2).abs() < 1e-12);
        assert_eq!(est.per_patch_rates(), vec![0.05, 0.15, 0.0, 0.10]);
        assert!((est.max_patch_rate() - 0.15).abs() < 1e-12);
        let empty = ChipEstimate {
            shots: 0,
            chip_failures: 0,
            per_patch_failures: vec![0, 0],
            struck_shots: 0,
            rounds: 5,
        };
        assert_eq!(empty.chip_failure_rate(), 0.0);
        assert_eq!(empty.max_patch_rate(), 0.0);
    }
}
