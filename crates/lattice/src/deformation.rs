//! Code deformation: the geometry behind the `op_expand` instruction.
//!
//! Section V of the paper temporarily expands the code distance of a logical
//! qubit affected by an MBBE from `d` to `d_exp ≥ d + 2·d_ano` (in practice a
//! 2×2 block, i.e. roughly doubling the distance) and shrinks it back once
//! the anomalous region has relaxed.  Figure 5 breaks the expansion into
//! three steps:
//!
//! 1. initialise the previously-unused data qubits in `|0⟩` / `|+⟩`,
//! 2. switch the stabilizer map to the expanded set of stabilizers,
//! 3. (on shrink) measure the extra data qubits out in the `Z` / `X` basis
//!    and restore the original stabilizer map.
//!
//! [`ExpansionPlan`] captures exactly that bookkeeping: which qubits are
//! initialised in which basis, which stabilizers are added or change support,
//! and which measurements undo the expansion.

use crate::{Coord, LatticeError, Pauli, Stabilizer, SurfaceCode};
use std::collections::HashMap;

/// The single-qubit basis a data qubit is initialised in (step 1) or measured
/// out in (step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreparationBasis {
    /// Computational basis, `|0⟩` preparation / `M_Z` measurement.
    Z,
    /// Hadamard basis, `|+⟩` preparation / `M_X` measurement.
    X,
}

impl PreparationBasis {
    /// The Pauli operator stabilizing the prepared state.
    pub fn stabilizing_pauli(self) -> Pauli {
        match self {
            PreparationBasis::Z => Pauli::Z,
            PreparationBasis::X => Pauli::X,
        }
    }
}

/// A plan for expanding a distance-`d` patch (anchored at the grid origin) to
/// a distance-`d_exp` patch, and for shrinking it back.
#[derive(Debug, Clone)]
pub struct ExpansionPlan {
    original: SurfaceCode,
    expanded: SurfaceCode,
    new_data_qubits: Vec<(Coord, PreparationBasis)>,
    added_stabilizers: Vec<Stabilizer>,
    modified_stabilizers: Vec<ModifiedStabilizer>,
}

/// A stabilizer whose support grows during the expansion (it existed in the
/// original code but gains data qubits from the new region).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModifiedStabilizer {
    /// The stabilizer as measured before the expansion.
    pub before: Stabilizer,
    /// The stabilizer as measured after the expansion.
    pub after: Stabilizer,
}

impl ExpansionPlan {
    /// Plans the expansion of a distance-`original_distance` patch to
    /// distance `expanded_distance`, both anchored at the grid origin.
    ///
    /// # Errors
    ///
    /// Returns an error when either distance is invalid or when
    /// `expanded_distance <= original_distance`.
    ///
    /// ```
    /// use q3de_lattice::deformation::ExpansionPlan;
    /// let plan = ExpansionPlan::new(5, 10)?;
    /// assert_eq!(plan.original().distance(), 5);
    /// assert_eq!(plan.expanded().distance(), 10);
    /// # Ok::<(), q3de_lattice::LatticeError>(())
    /// ```
    pub fn new(original_distance: usize, expanded_distance: usize) -> Result<Self, LatticeError> {
        if expanded_distance <= original_distance {
            return Err(LatticeError::InvalidDeformation {
                reason: format!(
                    "expanded distance {expanded_distance} must exceed the original distance {original_distance}"
                ),
            });
        }
        let original = SurfaceCode::new(original_distance)?;
        let expanded = SurfaceCode::new(expanded_distance)?;

        let original_data: std::collections::HashSet<Coord> =
            original.data_qubits().iter().copied().collect();
        let new_data_qubits: Vec<(Coord, PreparationBasis)> = expanded
            .data_qubits()
            .iter()
            .copied()
            .filter(|q| !original_data.contains(q))
            .map(|q| {
                // Data qubits on the (even, even) sublattice extend the rough
                // (left/right) boundaries, so they are prepared in |0⟩; the
                // (odd, odd) sublattice extends the smooth boundaries and is
                // prepared in |+⟩ (Fig. 5, step 1).
                let basis = if q.row % 2 == 0 {
                    PreparationBasis::Z
                } else {
                    PreparationBasis::X
                };
                (q, basis)
            })
            .collect();

        let original_by_ancilla: HashMap<Coord, &Stabilizer> = original
            .z_stabilizers()
            .iter()
            .chain(original.x_stabilizers())
            .map(|s| (s.ancilla, s))
            .collect();

        let mut added_stabilizers = Vec::new();
        let mut modified_stabilizers = Vec::new();
        for stab in expanded
            .z_stabilizers()
            .iter()
            .chain(expanded.x_stabilizers())
        {
            match original_by_ancilla.get(&stab.ancilla) {
                None => added_stabilizers.push(stab.clone()),
                Some(before) if before.support != stab.support => {
                    modified_stabilizers.push(ModifiedStabilizer {
                        before: (*before).clone(),
                        after: stab.clone(),
                    });
                }
                Some(_) => {}
            }
        }

        Ok(Self {
            original,
            expanded,
            new_data_qubits,
            added_stabilizers,
            modified_stabilizers,
        })
    }

    /// Convenience constructor for the paper's default policy: double the
    /// code distance (a 2×2 block of surface-code patches).
    pub fn doubled(original_distance: usize) -> Result<Self, LatticeError> {
        Self::new(original_distance, 2 * original_distance)
    }

    /// The code before the expansion.
    pub fn original(&self) -> &SurfaceCode {
        &self.original
    }

    /// The code after the expansion.
    pub fn expanded(&self) -> &SurfaceCode {
        &self.expanded
    }

    /// Step 1: the data qubits to initialise, with their preparation basis.
    pub fn new_data_qubits(&self) -> &[(Coord, PreparationBasis)] {
        &self.new_data_qubits
    }

    /// Step 2: stabilizers that exist only in the expanded code.
    pub fn added_stabilizers(&self) -> &[Stabilizer] {
        &self.added_stabilizers
    }

    /// Step 2: stabilizers whose support grows when the patch expands
    /// (weight-2 boundary stabilizers becoming weight-3/4 bulk stabilizers).
    pub fn modified_stabilizers(&self) -> &[ModifiedStabilizer] {
        &self.modified_stabilizers
    }

    /// Step 3: the measurements that shrink the patch back — every expansion
    /// qubit measured in its preparation basis.
    pub fn shrink_measurements(&self) -> impl Iterator<Item = (Coord, PreparationBasis)> + '_ {
        self.new_data_qubits.iter().copied()
    }

    /// Number of additional physical qubits consumed by the expansion.
    pub fn additional_physical_qubits(&self) -> usize {
        self.expanded.num_physical_qubits() - self.original.num_physical_qubits()
    }

    /// Latency (in code cycles) to complete the expansion fault-tolerantly:
    /// the expanded patch must be stabilised for of order `d_exp` rounds
    /// before the new distance is effective.
    pub fn expansion_latency_cycles(&self) -> usize {
        self.expanded.distance()
    }

    /// Latency (in code cycles) of the shrink step: a single round of
    /// single-qubit measurements plus one round of stabilizer measurements.
    pub fn shrink_latency_cycles(&self) -> usize {
        2
    }

    /// Whether the expanded distance satisfies the paper's sufficiency
    /// criterion `d_exp ≥ d + 2·d_ano` for an anomaly of size `anomaly_size`
    /// (Sec. V-B).
    pub fn covers_anomaly(&self, anomaly_size: usize) -> bool {
        self.expanded.distance() >= self.original.distance() + 2 * anomaly_size
    }
}

/// The deformation state of a logical qubit tracked by the control unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeformationState {
    /// The logical qubit is encoded at its default code distance.
    #[default]
    Normal,
    /// The logical qubit is temporarily expanded.
    Expanded {
        /// Code cycle at which the expansion completed.
        since_cycle: u64,
        /// Code cycle at which the patch is scheduled to shrink back.
        until_cycle: u64,
    },
}

impl DeformationState {
    /// Returns `true` when the qubit is currently expanded.
    pub fn is_expanded(&self) -> bool {
        matches!(self, DeformationState::Expanded { .. })
    }

    /// Extends the expansion deadline (the paper extends the keep time when a
    /// second `op_expand` targets an already-expanded region).
    pub fn extend_until(&mut self, new_until: u64) {
        if let DeformationState::Expanded { until_cycle, .. } = self {
            *until_cycle = (*until_cycle).max(new_until);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_requires_larger_distance() {
        assert!(ExpansionPlan::new(5, 5).is_err());
        assert!(ExpansionPlan::new(5, 4).is_err());
        assert!(ExpansionPlan::new(5, 6).is_ok());
    }

    #[test]
    fn qubit_accounting_is_consistent() {
        let plan = ExpansionPlan::new(3, 6).unwrap();
        let extra_data = plan.expanded().num_data_qubits() - plan.original().num_data_qubits();
        assert_eq!(plan.new_data_qubits().len(), extra_data);
        assert_eq!(
            plan.additional_physical_qubits(),
            plan.expanded().num_physical_qubits() - plan.original().num_physical_qubits()
        );
    }

    #[test]
    fn doubled_plan_doubles_distance() {
        let plan = ExpansionPlan::doubled(7).unwrap();
        assert_eq!(plan.expanded().distance(), 14);
        assert!(plan.covers_anomaly(3));
        assert!(!plan.covers_anomaly(4));
    }

    #[test]
    fn added_plus_original_stabilizers_equal_expanded() {
        let plan = ExpansionPlan::new(3, 5).unwrap();
        let original_count =
            plan.original().z_stabilizers().len() + plan.original().x_stabilizers().len();
        let expanded_count =
            plan.expanded().z_stabilizers().len() + plan.expanded().x_stabilizers().len();
        assert_eq!(
            original_count + plan.added_stabilizers().len(),
            expanded_count
        );
    }

    #[test]
    fn modified_stabilizers_grow_their_support() {
        let plan = ExpansionPlan::new(3, 6).unwrap();
        assert!(!plan.modified_stabilizers().is_empty());
        for m in plan.modified_stabilizers() {
            assert_eq!(m.before.ancilla, m.after.ancilla);
            assert!(m.after.support.len() > m.before.support.len());
            // every original qubit remains in the support
            for q in &m.before.support {
                assert!(m.after.support.contains(q));
            }
        }
    }

    #[test]
    fn new_qubits_lie_outside_the_original_patch() {
        let plan = ExpansionPlan::new(4, 8).unwrap();
        let size = plan.original().grid_size();
        for (q, _) in plan.new_data_qubits() {
            assert!(
                q.row >= size || q.col >= size,
                "new data qubit {q} lies inside the original patch"
            );
        }
    }

    #[test]
    fn shrink_measurements_match_initialisations() {
        let plan = ExpansionPlan::new(3, 5).unwrap();
        let init: Vec<_> = plan.new_data_qubits().to_vec();
        let shrink: Vec<_> = plan.shrink_measurements().collect();
        assert_eq!(init, shrink);
    }

    #[test]
    fn preparation_basis_depends_on_sublattice() {
        let plan = ExpansionPlan::new(3, 5).unwrap();
        for &(q, basis) in plan.new_data_qubits() {
            if q.row % 2 == 0 {
                assert_eq!(basis, PreparationBasis::Z);
            } else {
                assert_eq!(basis, PreparationBasis::X);
            }
        }
        assert_eq!(PreparationBasis::Z.stabilizing_pauli(), Pauli::Z);
        assert_eq!(PreparationBasis::X.stabilizing_pauli(), Pauli::X);
    }

    #[test]
    fn latencies_are_positive_and_scale_with_distance() {
        let plan = ExpansionPlan::new(5, 10).unwrap();
        assert_eq!(plan.expansion_latency_cycles(), 10);
        assert!(plan.shrink_latency_cycles() >= 1);
    }

    #[test]
    fn deformation_state_transitions() {
        let mut s = DeformationState::default();
        assert!(!s.is_expanded());
        s = DeformationState::Expanded {
            since_cycle: 10,
            until_cycle: 100,
        };
        assert!(s.is_expanded());
        s.extend_until(50);
        assert_eq!(
            s,
            DeformationState::Expanded {
                since_cycle: 10,
                until_cycle: 100
            }
        );
        s.extend_until(200);
        assert_eq!(
            s,
            DeformationState::Expanded {
                since_cycle: 10,
                until_cycle: 200
            }
        );
    }
}
