//! Minimal single-qubit Pauli algebra and sparse Pauli strings.
//!
//! The decoders in this workspace treat `X`- and `Z`-type errors
//! independently (as the paper does), but the noise model draws genuine
//! Pauli errors (`X`, `Y`, `Z`) so that `Y` errors correctly contribute to
//! *both* decoding problems.  [`Pauli`] implements the (phase-free)
//! multiplication table of the single-qubit Pauli group and [`PauliString`]
//! stores a sparse product of single-qubit Paulis keyed by lattice
//! coordinate.

use crate::Coord;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Mul;

/// A single-qubit Pauli operator, without phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pauli {
    /// The identity operator.
    #[default]
    I,
    /// The bit-flip operator.
    X,
    /// The combined bit- and phase-flip operator.
    Y,
    /// The phase-flip operator.
    Z,
}

impl Pauli {
    /// All four Pauli operators in canonical order `I, X, Y, Z`.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns `true` if the operator flips the qubit in the computational
    /// (`Z`) basis, i.e. it has an `X` component (`X` or `Y`).
    ///
    /// ```
    /// use q3de_lattice::Pauli;
    /// assert!(Pauli::X.has_x_component());
    /// assert!(Pauli::Y.has_x_component());
    /// assert!(!Pauli::Z.has_x_component());
    /// ```
    pub fn has_x_component(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Returns `true` if the operator has a `Z` component (`Z` or `Y`).
    pub fn has_z_component(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }

    /// Returns `true` for the identity.
    pub fn is_identity(self) -> bool {
        matches!(self, Pauli::I)
    }

    /// Whether this Pauli anti-commutes with `other`.
    ///
    /// Two non-identity Paulis anti-commute exactly when they differ.
    ///
    /// ```
    /// use q3de_lattice::Pauli;
    /// assert!(Pauli::X.anticommutes_with(Pauli::Z));
    /// assert!(!Pauli::X.anticommutes_with(Pauli::X));
    /// assert!(!Pauli::I.anticommutes_with(Pauli::Z));
    /// ```
    pub fn anticommutes_with(self, other: Pauli) -> bool {
        !self.is_identity() && !other.is_identity() && self != other
    }

    /// Builds a Pauli from its `(x, z)` symplectic components.
    pub fn from_components(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }
}

impl Mul for Pauli {
    type Output = Pauli;

    /// Phase-free Pauli multiplication (the group `P / {±1, ±i}` ≅ `Z₂ × Z₂`).
    fn mul(self, rhs: Pauli) -> Pauli {
        Pauli::from_components(
            self.has_x_component() ^ rhs.has_x_component(),
            self.has_z_component() ^ rhs.has_z_component(),
        )
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pauli::I => "I",
            Pauli::X => "X",
            Pauli::Y => "Y",
            Pauli::Z => "Z",
        };
        f.write_str(s)
    }
}

/// A sparse Pauli string: a product of single-qubit Paulis keyed by the
/// coordinate of the qubit they act on.  Identity factors are never stored.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PauliString {
    ops: BTreeMap<Coord, Pauli>,
}

impl PauliString {
    /// Creates the identity string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a string from an iterator of `(coordinate, Pauli)` pairs.
    /// Repeated coordinates are multiplied together.
    pub fn from_ops<I>(ops: I) -> Self
    where
        I: IntoIterator<Item = (Coord, Pauli)>,
    {
        let mut s = Self::new();
        for (c, p) in ops {
            s.apply(c, p);
        }
        s
    }

    /// Multiplies the factor acting on `coord` by `pauli` (in place).
    pub fn apply(&mut self, coord: Coord, pauli: Pauli) {
        if pauli.is_identity() {
            return;
        }
        let combined = self.get(coord) * pauli;
        if combined.is_identity() {
            self.ops.remove(&coord);
        } else {
            self.ops.insert(coord, combined);
        }
    }

    /// The Pauli acting on `coord` (identity if untouched).
    pub fn get(&self, coord: Coord) -> Pauli {
        self.ops.get(&coord).copied().unwrap_or(Pauli::I)
    }

    /// Number of non-identity factors (the *weight* of the string).
    pub fn weight(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the string is the identity.
    pub fn is_identity(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the non-identity factors in coordinate order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, Pauli)> + '_ {
        self.ops.iter().map(|(&c, &p)| (c, p))
    }

    /// Multiplies `other` into this string (component-wise, phase-free).
    pub fn compose(&mut self, other: &PauliString) {
        for (c, p) in other.iter() {
            self.apply(c, p);
        }
    }

    /// Parity of anti-commutation with a product of single-qubit Paulis of
    /// type `check` supported on `support` — i.e. the syndrome bit a
    /// stabilizer (or logical operator) of that type and support would
    /// measure for this error string.
    ///
    /// ```
    /// use q3de_lattice::{Coord, Pauli, PauliString};
    /// let mut err = PauliString::new();
    /// err.apply(Coord::new(0, 0), Pauli::X);
    /// // A Z-type check over the error's qubit anti-commutes once.
    /// assert!(err.anticommutes_with_check(Pauli::Z, [Coord::new(0, 0), Coord::new(0, 2)].iter().copied()));
    /// ```
    pub fn anticommutes_with_check<I>(&self, check: Pauli, support: I) -> bool
    where
        I: IntoIterator<Item = Coord>,
    {
        let mut parity = false;
        for c in support {
            if self.get(c).anticommutes_with(check) {
                parity = !parity;
            }
        }
        parity
    }

    /// Restricts the string to its `X` components: the set of coordinates
    /// whose factor has an `X` component (`X` or `Y`).
    pub fn x_support(&self) -> Vec<Coord> {
        self.iter()
            .filter(|(_, p)| p.has_x_component())
            .map(|(c, _)| c)
            .collect()
    }

    /// Restricts the string to its `Z` components (`Z` or `Y` factors).
    pub fn z_support(&self) -> Vec<Coord> {
        self.iter()
            .filter(|(_, p)| p.has_z_component())
            .map(|(c, _)| c)
            .collect()
    }
}

impl FromIterator<(Coord, Pauli)> for PauliString {
    fn from_iter<T: IntoIterator<Item = (Coord, Pauli)>>(iter: T) -> Self {
        Self::from_ops(iter)
    }
}

impl Extend<(Coord, Pauli)> for PauliString {
    fn extend<T: IntoIterator<Item = (Coord, Pauli)>>(&mut self, iter: T) {
        for (c, p) in iter {
            self.apply(c, p);
        }
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return f.write_str("I");
        }
        let mut first = true;
        for (c, p) in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{p}{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_multiplication_table() {
        use Pauli::*;
        assert_eq!(X * X, I);
        assert_eq!(Z * Z, I);
        assert_eq!(Y * Y, I);
        assert_eq!(X * Z, Y);
        assert_eq!(Z * X, Y);
        assert_eq!(X * Y, Z);
        assert_eq!(Y * Z, X);
        assert_eq!(I * Y, Y);
    }

    #[test]
    fn anticommutation_relations() {
        use Pauli::*;
        assert!(X.anticommutes_with(Z));
        assert!(X.anticommutes_with(Y));
        assert!(Y.anticommutes_with(Z));
        assert!(!X.anticommutes_with(X));
        assert!(!I.anticommutes_with(X));
        assert!(!X.anticommutes_with(I));
    }

    #[test]
    fn components_round_trip() {
        for p in Pauli::ALL {
            let q = Pauli::from_components(p.has_x_component(), p.has_z_component());
            assert_eq!(p, q);
        }
    }

    #[test]
    fn pauli_string_apply_cancels() {
        let c = Coord::new(0, 0);
        let mut s = PauliString::new();
        s.apply(c, Pauli::X);
        assert_eq!(s.weight(), 1);
        s.apply(c, Pauli::X);
        assert!(s.is_identity());
    }

    #[test]
    fn pauli_string_apply_combines() {
        let c = Coord::new(2, 2);
        let mut s = PauliString::new();
        s.apply(c, Pauli::X);
        s.apply(c, Pauli::Z);
        assert_eq!(s.get(c), Pauli::Y);
        assert_eq!(s.weight(), 1);
    }

    #[test]
    fn compose_is_elementwise_product() {
        let a: PauliString = [(Coord::new(0, 0), Pauli::X), (Coord::new(1, 1), Pauli::Z)]
            .into_iter()
            .collect();
        let b: PauliString = [(Coord::new(0, 0), Pauli::Z), (Coord::new(2, 2), Pauli::Y)]
            .into_iter()
            .collect();
        let mut c = a.clone();
        c.compose(&b);
        assert_eq!(c.get(Coord::new(0, 0)), Pauli::Y);
        assert_eq!(c.get(Coord::new(1, 1)), Pauli::Z);
        assert_eq!(c.get(Coord::new(2, 2)), Pauli::Y);
    }

    #[test]
    fn syndrome_parity_of_check() {
        let err: PauliString = [(Coord::new(0, 0), Pauli::X), (Coord::new(0, 2), Pauli::X)]
            .into_iter()
            .collect();
        // Z-check over both X errors: even parity.
        assert!(!err.anticommutes_with_check(
            Pauli::Z,
            [Coord::new(0, 0), Coord::new(0, 2)].iter().copied()
        ));
        // Z-check over exactly one X error: odd parity.
        assert!(err.anticommutes_with_check(
            Pauli::Z,
            [Coord::new(0, 0), Coord::new(4, 4)].iter().copied()
        ));
    }

    #[test]
    fn support_projections() {
        let err: PauliString = [
            (Coord::new(0, 0), Pauli::X),
            (Coord::new(1, 1), Pauli::Y),
            (Coord::new(2, 2), Pauli::Z),
        ]
        .into_iter()
        .collect();
        assert_eq!(err.x_support(), vec![Coord::new(0, 0), Coord::new(1, 1)]);
        assert_eq!(err.z_support(), vec![Coord::new(1, 1), Coord::new(2, 2)]);
    }

    #[test]
    fn display_shows_factors() {
        let err: PauliString = [(Coord::new(0, 0), Pauli::X)].into_iter().collect();
        assert_eq!(format!("{err}"), "X(0, 0)");
        assert_eq!(format!("{}", PauliString::new()), "I");
    }
}
