//! Error type for lattice construction.

use std::error::Error;
use std::fmt;

/// Errors returned when constructing lattice objects from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// The requested code distance is too small to define a planar code.
    DistanceTooSmall {
        /// The distance that was requested.
        requested: usize,
        /// The smallest supported distance.
        minimum: usize,
    },
    /// A coordinate was expected to identify a qubit of a specific role but
    /// does not.
    InvalidSite {
        /// The offending coordinate, as `(row, col)`.
        coord: (i32, i32),
        /// Human-readable description of what was expected.
        expected: &'static str,
    },
    /// A code-deformation request is inconsistent (e.g. the expanded distance
    /// is not larger than the current one).
    InvalidDeformation {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A chip-layout request is inconsistent (empty patch grid, negative
    /// gap, …).
    InvalidChipLayout {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::DistanceTooSmall { requested, minimum } => write!(
                f,
                "code distance {requested} is too small, the minimum supported distance is {minimum}"
            ),
            LatticeError::InvalidSite { coord, expected } => {
                write!(f, "site ({}, {}) is not a valid {expected}", coord.0, coord.1)
            }
            LatticeError::InvalidDeformation { reason } => {
                write!(f, "invalid code deformation: {reason}")
            }
            LatticeError::InvalidChipLayout { reason } => {
                write!(f, "invalid chip layout: {reason}")
            }
        }
    }
}

impl Error for LatticeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LatticeError::DistanceTooSmall {
            requested: 1,
            minimum: 2,
        };
        assert!(format!("{e}").contains("too small"));
        let e = LatticeError::InvalidSite {
            coord: (1, 2),
            expected: "data qubit",
        };
        assert!(format!("{e}").contains("data qubit"));
        let e = LatticeError::InvalidDeformation {
            reason: "d_exp <= d".into(),
        };
        assert!(format!("{e}").contains("d_exp"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<LatticeError>();
    }
}
