//! Site coordinates on the `(2d−1) × (2d−1)` surface-code grid.

use std::fmt;

/// A site on the surface-code grid.
///
/// The planar surface code of distance `d` is laid out on a
/// `(2d−1) × (2d−1)` grid of sites.  Sites whose coordinate parities are
/// `(even, even)` or `(odd, odd)` hold *data* qubits; sites with
/// `(even, odd)` parities hold the `Z`-stabilizer ancillas and sites with
/// `(odd, even)` parities hold the `X`-stabilizer ancillas.
///
/// Coordinates are signed so that positions of *expanded* codes (code
/// deformation can grow a patch beyond its original footprint) and relative
/// offsets can be expressed without underflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Row index (grows downwards).
    pub row: i32,
    /// Column index (grows rightwards).
    pub col: i32,
}

impl Coord {
    /// Creates a coordinate from a `(row, col)` pair.
    ///
    /// ```
    /// use q3de_lattice::Coord;
    /// let c = Coord::new(2, 3);
    /// assert_eq!((c.row, c.col), (2, 3));
    /// ```
    pub const fn new(row: i32, col: i32) -> Self {
        Self { row, col }
    }

    /// Manhattan (L1) distance to another coordinate.
    ///
    /// ```
    /// use q3de_lattice::Coord;
    /// assert_eq!(Coord::new(0, 0).manhattan(Coord::new(2, -3)), 5);
    /// ```
    pub fn manhattan(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Chebyshev (L∞) distance to another coordinate.
    pub fn chebyshev(self, other: Coord) -> u32 {
        self.row
            .abs_diff(other.row)
            .max(self.col.abs_diff(other.col))
    }

    /// The four nearest-neighbour sites (up, down, left, right).
    pub fn neighbors(self) -> [Coord; 4] {
        [
            Coord::new(self.row - 1, self.col),
            Coord::new(self.row + 1, self.col),
            Coord::new(self.row, self.col - 1),
            Coord::new(self.row, self.col + 1),
        ]
    }

    /// Returns `true` when both parities are even or both odd, i.e. the site
    /// holds a data qubit on the standard planar layout.
    pub fn is_data_site(self) -> bool {
        (self.row.rem_euclid(2)) == (self.col.rem_euclid(2))
    }

    /// Offsets the coordinate by `(drow, dcol)`.
    pub fn offset(self, drow: i32, dcol: i32) -> Coord {
        Coord::new(self.row + drow, self.col + dcol)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

impl From<(i32, i32)> for Coord {
    fn from((row, col): (i32, i32)) -> Self {
        Coord::new(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric() {
        let a = Coord::new(1, 7);
        let b = Coord::new(-4, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 10);
    }

    #[test]
    fn manhattan_to_self_is_zero() {
        let a = Coord::new(3, 3);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn chebyshev_distance() {
        let a = Coord::new(0, 0);
        let b = Coord::new(2, -5);
        assert_eq!(a.chebyshev(b), 5);
    }

    #[test]
    fn neighbors_are_distance_one() {
        let c = Coord::new(4, 4);
        for n in c.neighbors() {
            assert_eq!(c.manhattan(n), 1);
        }
    }

    #[test]
    fn data_site_parity() {
        assert!(Coord::new(0, 0).is_data_site());
        assert!(Coord::new(1, 1).is_data_site());
        assert!(!Coord::new(0, 1).is_data_site());
        assert!(!Coord::new(1, 0).is_data_site());
        // negative coordinates use euclidean parity
        assert!(Coord::new(-1, 1).is_data_site());
        assert!(!Coord::new(-1, 0).is_data_site());
    }

    #[test]
    fn display_and_from_tuple() {
        let c: Coord = (2, 5).into();
        assert_eq!(format!("{c}"), "(2, 5)");
    }

    #[test]
    fn ordering_is_row_major() {
        assert!(Coord::new(0, 5) < Coord::new(1, 0));
        assert!(Coord::new(1, 0) < Coord::new(1, 2));
    }
}
