//! Planar surface-code geometry.

use crate::{Coord, LatticeError, MatchingGraph, Pauli, PauliString};
use std::collections::HashMap;

/// The kind of a data-qubit error being decoded.
///
/// `X`-type errors are detected by `Z` stabilizers and vice versa; the paper
/// decodes the two problems independently (Sec. VII-A, assumption 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Bit-flip errors (`X` or the `X` component of `Y`).
    X,
    /// Phase-flip errors (`Z` or the `Z` component of `Y`).
    Z,
}

impl ErrorKind {
    /// The stabilizer kind that detects this error kind.
    pub fn detected_by(self) -> StabilizerKind {
        match self {
            ErrorKind::X => StabilizerKind::Z,
            ErrorKind::Z => StabilizerKind::X,
        }
    }

    /// The single-qubit Pauli representing this error kind.
    pub fn pauli(self) -> Pauli {
        match self {
            ErrorKind::X => Pauli::X,
            ErrorKind::Z => Pauli::Z,
        }
    }
}

/// The kind of a stabilizer generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabilizerKind {
    /// A product of Pauli-`X` operators (plaquette operator).
    X,
    /// A product of Pauli-`Z` operators (star operator).
    Z,
}

impl StabilizerKind {
    /// The single-qubit Pauli each factor of the stabilizer applies.
    pub fn pauli(self) -> Pauli {
        match self {
            StabilizerKind::X => Pauli::X,
            StabilizerKind::Z => Pauli::Z,
        }
    }

    /// The error kind this stabilizer detects.
    pub fn detects(self) -> ErrorKind {
        match self {
            StabilizerKind::X => ErrorKind::Z,
            StabilizerKind::Z => ErrorKind::X,
        }
    }
}

/// The role a grid site plays in the surface-code layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QubitRole {
    /// A data qubit storing part of the logical state.
    Data,
    /// An ancilla used for `X`-stabilizer (plaquette) measurements.
    AncillaX,
    /// An ancilla used for `Z`-stabilizer (star) measurements.
    AncillaZ,
}

/// A single stabilizer generator: its ancilla site and the data qubits it
/// monitors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// The ancilla qubit used to measure this stabilizer.
    pub ancilla: Coord,
    /// Whether this is an `X` or a `Z` stabilizer.
    pub kind: StabilizerKind,
    /// The data qubits in the stabilizer's support (2, 3 or 4 of them on the
    /// planar code).
    pub support: Vec<Coord>,
}

/// A distance-`d` planar surface code laid out on a `(2d−1) × (2d−1)` grid of
/// sites.
///
/// * Data qubits sit on sites with equal row/column parity.
/// * `Z`-stabilizer ancillas sit on `(even row, odd column)` sites; the code
///   has *rough* boundaries on the left and right, so a logical `X` operator
///   is a horizontal chain of `d` data qubits.
/// * `X`-stabilizer ancillas sit on `(odd row, even column)` sites; a logical
///   `Z` operator is a vertical chain of `d` data qubits.
#[derive(Debug, Clone)]
pub struct SurfaceCode {
    distance: usize,
    data_qubits: Vec<Coord>,
    z_stabilizers: Vec<Stabilizer>,
    x_stabilizers: Vec<Stabilizer>,
    roles: HashMap<Coord, QubitRole>,
}

impl SurfaceCode {
    /// Smallest supported code distance.
    pub const MIN_DISTANCE: usize = 2;

    /// Builds the geometry of a distance-`d` planar surface code.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::DistanceTooSmall`] when `distance < 2`.
    ///
    /// ```
    /// use q3de_lattice::SurfaceCode;
    /// assert!(SurfaceCode::new(1).is_err());
    /// let code = SurfaceCode::new(3)?;
    /// assert_eq!(code.num_data_qubits(), 13);
    /// # Ok::<(), q3de_lattice::LatticeError>(())
    /// ```
    pub fn new(distance: usize) -> Result<Self, LatticeError> {
        if distance < Self::MIN_DISTANCE {
            return Err(LatticeError::DistanceTooSmall {
                requested: distance,
                minimum: Self::MIN_DISTANCE,
            });
        }
        let size = 2 * distance as i32 - 1;
        let mut data_qubits = Vec::new();
        let mut z_stabilizers = Vec::new();
        let mut x_stabilizers = Vec::new();
        let mut roles = HashMap::new();

        for row in 0..size {
            for col in 0..size {
                let c = Coord::new(row, col);
                let role = match (row % 2, col % 2) {
                    (a, b) if a == b => QubitRole::Data,
                    (0, _) => QubitRole::AncillaZ,
                    _ => QubitRole::AncillaX,
                };
                roles.insert(c, role);
                match role {
                    QubitRole::Data => data_qubits.push(c),
                    QubitRole::AncillaZ | QubitRole::AncillaX => {
                        let kind = if role == QubitRole::AncillaZ {
                            StabilizerKind::Z
                        } else {
                            StabilizerKind::X
                        };
                        let support: Vec<Coord> = c
                            .neighbors()
                            .into_iter()
                            .filter(|n| n.row >= 0 && n.col >= 0 && n.row < size && n.col < size)
                            .collect();
                        let stab = Stabilizer {
                            ancilla: c,
                            kind,
                            support,
                        };
                        if kind == StabilizerKind::Z {
                            z_stabilizers.push(stab);
                        } else {
                            x_stabilizers.push(stab);
                        }
                    }
                }
            }
        }

        Ok(Self {
            distance,
            data_qubits,
            z_stabilizers,
            x_stabilizers,
            roles,
        })
    }

    /// The code distance `d`.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Linear size of the site grid, `2d − 1`.
    pub fn grid_size(&self) -> i32 {
        2 * self.distance as i32 - 1
    }

    /// All data-qubit coordinates in row-major order.
    pub fn data_qubits(&self) -> &[Coord] {
        &self.data_qubits
    }

    /// Number of data qubits, `d² + (d−1)²`.
    pub fn num_data_qubits(&self) -> usize {
        self.data_qubits.len()
    }

    /// Number of ancilla qubits, `2 d (d−1)`.
    pub fn num_ancilla_qubits(&self) -> usize {
        self.z_stabilizers.len() + self.x_stabilizers.len()
    }

    /// Total number of physical qubits on the patch, `(2d−1)²`.
    pub fn num_physical_qubits(&self) -> usize {
        self.num_data_qubits() + self.num_ancilla_qubits()
    }

    /// The `Z` stabilizers (star operators) of the code.
    pub fn z_stabilizers(&self) -> &[Stabilizer] {
        &self.z_stabilizers
    }

    /// The `X` stabilizers (plaquette operators) of the code.
    pub fn x_stabilizers(&self) -> &[Stabilizer] {
        &self.x_stabilizers
    }

    /// The stabilizers of the given kind.
    pub fn stabilizers(&self, kind: StabilizerKind) -> &[Stabilizer] {
        match kind {
            StabilizerKind::Z => &self.z_stabilizers,
            StabilizerKind::X => &self.x_stabilizers,
        }
    }

    /// The role of a grid site, or `None` if the site lies outside the patch.
    pub fn role(&self, coord: Coord) -> Option<QubitRole> {
        self.roles.get(&coord).copied()
    }

    /// Returns `true` when `coord` lies on the patch.
    pub fn contains(&self, coord: Coord) -> bool {
        self.roles.contains_key(&coord)
    }

    /// Computes the syndrome of `error` for all stabilizers of `kind`, in the
    /// same order as [`SurfaceCode::stabilizers`].
    ///
    /// Each syndrome bit is the parity of anti-commutations between the
    /// stabilizer (a product of `kind.pauli()` factors) and the error string.
    pub fn syndrome(&self, kind: StabilizerKind, error: &PauliString) -> Vec<bool> {
        self.stabilizers(kind)
            .iter()
            .map(|s| error.anticommutes_with_check(kind.pauli(), s.support.iter().copied()))
            .collect()
    }

    /// The support of the canonical logical `X` operator: the `d` data qubits
    /// of the top row.
    pub fn logical_x_support(&self) -> Vec<Coord> {
        (0..self.distance as i32)
            .map(|i| Coord::new(0, 2 * i))
            .collect()
    }

    /// The support of the canonical logical `Z` operator: the `d` data qubits
    /// of the left column.
    pub fn logical_z_support(&self) -> Vec<Coord> {
        (0..self.distance as i32)
            .map(|i| Coord::new(2 * i, 0))
            .collect()
    }

    /// Whether `residual` (typically `error ⊕ correction`) acts as a logical
    /// `X` on the encoded qubit, i.e. anti-commutes with the logical `Z`
    /// operator.
    ///
    /// The caller is responsible for ensuring `residual` has trivial
    /// syndrome; otherwise the result is representative-dependent.
    pub fn has_logical_x_error(&self, residual: &PauliString) -> bool {
        residual.anticommutes_with_check(Pauli::Z, self.logical_z_support())
    }

    /// Whether `residual` acts as a logical `Z`, i.e. anti-commutes with the
    /// logical `X` operator.
    pub fn has_logical_z_error(&self, residual: &PauliString) -> bool {
        residual.anticommutes_with_check(Pauli::X, self.logical_x_support())
    }

    /// Builds the 2D matching ("layer") graph for decoding errors of `kind`.
    pub fn matching_graph(&self, kind: ErrorKind) -> MatchingGraph {
        MatchingGraph::build(self, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_one_is_rejected() {
        assert!(matches!(
            SurfaceCode::new(1),
            Err(LatticeError::DistanceTooSmall {
                requested: 1,
                minimum: 2
            })
        ));
    }

    #[test]
    fn qubit_counts_match_formulas() {
        for d in 2..=9usize {
            let code = SurfaceCode::new(d).unwrap();
            assert_eq!(
                code.num_data_qubits(),
                d * d + (d - 1) * (d - 1),
                "data qubits, d={d}"
            );
            assert_eq!(
                code.num_ancilla_qubits(),
                2 * d * (d - 1),
                "ancillas, d={d}"
            );
            assert_eq!(
                code.num_physical_qubits(),
                (2 * d - 1) * (2 * d - 1),
                "total, d={d}"
            );
            assert_eq!(code.z_stabilizers().len(), d * (d - 1));
            assert_eq!(code.x_stabilizers().len(), d * (d - 1));
        }
    }

    #[test]
    fn stabilizer_supports_have_two_to_four_qubits() {
        let code = SurfaceCode::new(5).unwrap();
        for s in code.z_stabilizers().iter().chain(code.x_stabilizers()) {
            assert!(
                (2..=4).contains(&s.support.len()),
                "support size {}",
                s.support.len()
            );
            for q in &s.support {
                assert_eq!(code.role(*q), Some(QubitRole::Data));
            }
        }
    }

    #[test]
    fn roles_partition_the_grid() {
        let code = SurfaceCode::new(4).unwrap();
        let size = code.grid_size();
        let mut counts = HashMap::new();
        for row in 0..size {
            for col in 0..size {
                let role = code.role(Coord::new(row, col)).unwrap();
                *counts.entry(role).or_insert(0usize) += 1;
            }
        }
        assert_eq!(counts[&QubitRole::Data], code.num_data_qubits());
        assert_eq!(counts[&QubitRole::AncillaZ], code.z_stabilizers().len());
        assert_eq!(counts[&QubitRole::AncillaX], code.x_stabilizers().len());
        assert!(!code.contains(Coord::new(-1, 0)));
        assert!(!code.contains(Coord::new(size, 0)));
    }

    #[test]
    fn logical_operators_have_weight_d_and_anticommute() {
        for d in 2..=7usize {
            let code = SurfaceCode::new(d).unwrap();
            let lx = code.logical_x_support();
            let lz = code.logical_z_support();
            assert_eq!(lx.len(), d);
            assert_eq!(lz.len(), d);
            // They overlap on exactly one qubit, the top-left corner.
            let overlap: Vec<_> = lx.iter().filter(|c| lz.contains(c)).collect();
            assert_eq!(overlap.len(), 1);
            for q in lx.iter().chain(lz.iter()) {
                assert_eq!(
                    code.role(*q),
                    Some(QubitRole::Data),
                    "logical support on data qubits"
                );
            }
        }
    }

    #[test]
    fn logical_x_operator_commutes_with_all_z_stabilizers() {
        let code = SurfaceCode::new(5).unwrap();
        let logical_x: PauliString = code
            .logical_x_support()
            .into_iter()
            .map(|c| (c, Pauli::X))
            .collect();
        let syndrome = code.syndrome(StabilizerKind::Z, &logical_x);
        assert!(
            syndrome.iter().all(|&s| !s),
            "logical X must be undetected by Z stabilizers"
        );
        assert!(code.has_logical_x_error(&logical_x));
    }

    #[test]
    fn logical_z_operator_commutes_with_all_x_stabilizers() {
        let code = SurfaceCode::new(5).unwrap();
        let logical_z: PauliString = code
            .logical_z_support()
            .into_iter()
            .map(|c| (c, Pauli::Z))
            .collect();
        let syndrome = code.syndrome(StabilizerKind::X, &logical_z);
        assert!(
            syndrome.iter().all(|&s| !s),
            "logical Z must be undetected by X stabilizers"
        );
        assert!(code.has_logical_z_error(&logical_z));
    }

    #[test]
    fn stabilizers_commute_with_each_other() {
        // Every Z stabilizer (as a Pauli string) must have trivial X-stabilizer
        // syndrome: the stabilizer group is abelian.
        let code = SurfaceCode::new(4).unwrap();
        for zs in code.z_stabilizers() {
            let op: PauliString = zs.support.iter().map(|&c| (c, Pauli::Z)).collect();
            let syn = code.syndrome(StabilizerKind::X, &op);
            assert!(
                syn.iter().all(|&b| !b),
                "Z stabilizer at {} anticommutes",
                zs.ancilla
            );
        }
    }

    #[test]
    fn single_x_error_triggers_one_or_two_z_stabilizers() {
        let code = SurfaceCode::new(5).unwrap();
        for &q in code.data_qubits() {
            let err: PauliString = [(q, Pauli::X)].into_iter().collect();
            let syn = code.syndrome(StabilizerKind::Z, &err);
            let triggered = syn.iter().filter(|&&b| b).count();
            assert!(
                (1..=2).contains(&triggered),
                "single X on {q} triggered {triggered} Z stabilizers"
            );
        }
    }

    #[test]
    fn y_error_triggers_both_sectors() {
        let code = SurfaceCode::new(3).unwrap();
        // interior data qubit
        let q = Coord::new(2, 2);
        let err: PauliString = [(q, Pauli::Y)].into_iter().collect();
        assert!(code.syndrome(StabilizerKind::Z, &err).iter().any(|&b| b));
        assert!(code.syndrome(StabilizerKind::X, &err).iter().any(|&b| b));
    }

    #[test]
    fn stabilizer_product_has_trivial_syndrome_and_no_logical_action() {
        let code = SurfaceCode::new(4).unwrap();
        // product of a few Z stabilizers is in the stabilizer group
        let mut op = PauliString::new();
        for zs in code.z_stabilizers().iter().take(5) {
            let s: PauliString = zs.support.iter().map(|&c| (c, Pauli::Z)).collect();
            op.compose(&s);
        }
        assert!(code.syndrome(StabilizerKind::X, &op).iter().all(|&b| !b));
        assert!(!code.has_logical_z_error(&op));
    }

    #[test]
    fn error_kind_stabilizer_kind_duality() {
        assert_eq!(ErrorKind::X.detected_by(), StabilizerKind::Z);
        assert_eq!(ErrorKind::Z.detected_by(), StabilizerKind::X);
        assert_eq!(StabilizerKind::Z.detects(), ErrorKind::X);
        assert_eq!(StabilizerKind::X.detects(), ErrorKind::Z);
        assert_eq!(ErrorKind::X.pauli(), Pauli::X);
        assert_eq!(StabilizerKind::X.pauli(), Pauli::X);
    }
}
