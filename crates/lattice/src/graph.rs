//! The 2D matching ("layer") graph of the surface code.
//!
//! For a fixed [`ErrorKind`], the matching graph has one node per stabilizer
//! that detects that error kind and one edge per data qubit.  An edge joins
//! the (one or two) stabilizers flipped by a single error of that kind on the
//! corresponding data qubit; edges with a single endpoint are *boundary*
//! edges.  The space-time detector graph used by the decoders is built by
//! stacking copies of this layer graph (see the `q3de-decoder` crate).

use crate::{Coord, ErrorKind, SurfaceCode};
use std::collections::HashMap;

/// Index of a node (stabilizer) in a [`MatchingGraph`].
pub type NodeIndex = usize;
/// Index of an edge (data qubit) in a [`MatchingGraph`].
pub type EdgeIndex = usize;

/// An edge of the matching graph: a single data qubit whose error flips the
/// incident stabilizer(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// First incident stabilizer node.
    pub a: NodeIndex,
    /// Second incident stabilizer node, or `None` for a boundary edge.
    pub b: Option<NodeIndex>,
    /// The data qubit this edge corresponds to.
    pub qubit: Coord,
}

impl GraphEdge {
    /// Returns `true` when the edge touches a lattice boundary.
    pub fn is_boundary(&self) -> bool {
        self.b.is_none()
    }

    /// Given one endpoint, returns the other (or `None` for the boundary).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this edge.
    pub fn other(&self, from: NodeIndex) -> Option<NodeIndex> {
        if self.a == from {
            self.b
        } else {
            assert_eq!(
                self.b,
                Some(from),
                "node {from} is not an endpoint of this edge"
            );
            Some(self.a)
        }
    }
}

/// The 2D decoding graph of a [`SurfaceCode`] for one error kind.
#[derive(Debug, Clone)]
pub struct MatchingGraph {
    kind: ErrorKind,
    distance: usize,
    nodes: Vec<Coord>,
    node_index: HashMap<Coord, NodeIndex>,
    edges: Vec<GraphEdge>,
    adjacency: Vec<Vec<EdgeIndex>>,
    qubit_edge: HashMap<Coord, EdgeIndex>,
    cut_edges: Vec<EdgeIndex>,
}

impl MatchingGraph {
    /// Builds the layer graph of `code` for errors of `kind`.
    pub(crate) fn build(code: &SurfaceCode, kind: ErrorKind) -> Self {
        let stab_kind = kind.detected_by();
        let stabs = code.stabilizers(stab_kind);
        let nodes: Vec<Coord> = stabs.iter().map(|s| s.ancilla).collect();
        let node_index: HashMap<Coord, NodeIndex> =
            nodes.iter().enumerate().map(|(i, &c)| (c, i)).collect();

        let mut edges = Vec::with_capacity(code.num_data_qubits());
        let mut adjacency = vec![Vec::new(); nodes.len()];
        let mut qubit_edge = HashMap::with_capacity(code.num_data_qubits());
        let mut cut_edges = Vec::new();

        for &qubit in code.data_qubits() {
            // The stabilizers of the detecting kind adjacent to this qubit.
            let incident: Vec<NodeIndex> = qubit
                .neighbors()
                .into_iter()
                .filter_map(|n| node_index.get(&n).copied())
                .collect();
            let edge_index = edges.len();
            let edge = match incident.as_slice() {
                [a] => GraphEdge {
                    a: *a,
                    b: None,
                    qubit,
                },
                [a, b] => GraphEdge {
                    a: *a,
                    b: Some(*b),
                    qubit,
                },
                other => unreachable!(
                    "data qubit {qubit} is adjacent to {} detecting stabilizers",
                    other.len()
                ),
            };
            adjacency[edge.a].push(edge_index);
            if let Some(b) = edge.b {
                adjacency[b].push(edge_index);
            }
            // The homological cut: boundary edges on the "low" boundary.  The
            // parity of flipped cut edges equals the logical flip parity.
            let on_cut = match kind {
                ErrorKind::X => qubit.col == 0,
                ErrorKind::Z => qubit.row == 0,
            };
            if on_cut {
                cut_edges.push(edge_index);
            }
            qubit_edge.insert(qubit, edge_index);
            edges.push(edge);
        }

        Self {
            kind,
            distance: code.distance(),
            nodes,
            node_index,
            edges,
            adjacency,
            qubit_edge,
            cut_edges,
        }
    }

    /// The error kind this graph decodes.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The code distance of the underlying surface code.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of stabilizer nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (= number of data qubits).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The ancilla coordinate of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: NodeIndex) -> Coord {
        self.nodes[index]
    }

    /// All node coordinates in index order.
    pub fn nodes(&self) -> &[Coord] {
        &self.nodes
    }

    /// Looks up the node index of a stabilizer ancilla coordinate.
    pub fn node_index(&self, coord: Coord) -> Option<NodeIndex> {
        self.node_index.get(&coord).copied()
    }

    /// The edge with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn edge(&self, index: EdgeIndex) -> &GraphEdge {
        &self.edges[index]
    }

    /// All edges in index order.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// The edges incident to node `index`.
    pub fn incident_edges(&self, index: NodeIndex) -> &[EdgeIndex] {
        &self.adjacency[index]
    }

    /// The edge corresponding to a data qubit, if that qubit participates in
    /// this graph (all data qubits do on the planar code).
    pub fn edge_of_qubit(&self, qubit: Coord) -> Option<EdgeIndex> {
        self.qubit_edge.get(&qubit).copied()
    }

    /// Indices of all boundary edges.
    pub fn boundary_edges(&self) -> impl Iterator<Item = EdgeIndex> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_boundary())
            .map(|(i, _)| i)
    }

    /// The homological cut used for the logical-failure check: the boundary
    /// edges of the left boundary (for `X` errors) or top boundary (for `Z`
    /// errors).  Any logical operator crosses this cut an odd number of
    /// times; any stabilizer or trivial chain crosses it an even number of
    /// times.
    pub fn cut_edges(&self) -> &[EdgeIndex] {
        &self.cut_edges
    }

    /// Parity of the given multiset of flipped edges across the homological
    /// cut, i.e. whether the chain acts as a logical operator.
    ///
    /// Edges listed an even number of times cancel.
    pub fn logical_parity<I>(&self, flipped_edges: I) -> bool
    where
        I: IntoIterator<Item = EdgeIndex>,
    {
        let mut counts: HashMap<EdgeIndex, usize> = HashMap::new();
        for e in flipped_edges {
            *counts.entry(e).or_insert(0) += 1;
        }
        let mut parity = false;
        for &e in &self.cut_edges {
            if counts.get(&e).map(|c| c % 2 == 1).unwrap_or(false) {
                parity = !parity;
            }
        }
        parity
    }

    /// Graph distance (number of edges) between two nodes in the *uniform*
    /// layer graph: half the Manhattan distance of their ancilla coordinates.
    pub fn space_distance(&self, a: NodeIndex, b: NodeIndex) -> u32 {
        self.nodes[a].manhattan(self.nodes[b]) / 2
    }

    /// Graph distances from a node to the two boundaries of the uniform
    /// layer graph, as `(low, high)`.
    ///
    /// For `X`-error graphs `low` is the left boundary (the homological cut,
    /// see [`MatchingGraph::cut_edges`]) and `high` the right one; for
    /// `Z`-error graphs they are the top and bottom boundaries.
    pub fn boundary_distances(&self, node: NodeIndex) -> (u32, u32) {
        let c = self.nodes[node];
        let size = 2 * self.distance as i32 - 2;
        let (low, high) = match self.kind {
            ErrorKind::X => (c.col, size - c.col),
            ErrorKind::Z => (c.row, size - c.row),
        };
        // The node sits at odd offset from the boundary; (offset + 1) / 2
        // edges reach it.
        ((low as u32).div_ceil(2), (high as u32).div_ceil(2))
    }

    /// Graph distance from a node to the nearest boundary in the uniform
    /// layer graph.
    pub fn boundary_distance(&self, node: NodeIndex) -> u32 {
        let (low, high) = self.boundary_distances(node);
        low.min(high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pauli, PauliString, StabilizerKind};

    fn graphs(d: usize) -> (SurfaceCode, MatchingGraph, MatchingGraph) {
        let code = SurfaceCode::new(d).unwrap();
        let gx = code.matching_graph(ErrorKind::X);
        let gz = code.matching_graph(ErrorKind::Z);
        (code, gx, gz)
    }

    #[test]
    fn node_and_edge_counts() {
        for d in 2..=7usize {
            let (code, gx, gz) = graphs(d);
            assert_eq!(gx.num_nodes(), d * (d - 1));
            assert_eq!(gz.num_nodes(), d * (d - 1));
            assert_eq!(gx.num_edges(), code.num_data_qubits());
            assert_eq!(gz.num_edges(), code.num_data_qubits());
            let boundary_x = gx.boundary_edges().count();
            let boundary_z = gz.boundary_edges().count();
            assert_eq!(
                boundary_x,
                2 * d,
                "X graph has d boundary edges per rough side"
            );
            assert_eq!(boundary_z, 2 * d);
        }
    }

    #[test]
    fn cut_edges_have_size_d() {
        for d in 2..=7usize {
            let (_, gx, gz) = graphs(d);
            assert_eq!(gx.cut_edges().len(), d);
            assert_eq!(gz.cut_edges().len(), d);
        }
    }

    #[test]
    fn every_node_has_at_most_four_incident_edges() {
        let (_, gx, _) = graphs(6);
        for n in 0..gx.num_nodes() {
            let deg = gx.incident_edges(n).len();
            assert!((2..=4).contains(&deg), "degree {deg}");
        }
    }

    #[test]
    fn edge_endpoints_agree_with_syndrome() {
        // For every data qubit, the nodes flipped by a single error of the
        // graph's kind are exactly the endpoints of its edge.
        let (code, gx, _) = graphs(4);
        for &q in code.data_qubits() {
            let err: PauliString = [(q, Pauli::X)].into_iter().collect();
            let syn = code.syndrome(StabilizerKind::Z, &err);
            let flipped: Vec<NodeIndex> = syn
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i)
                .collect();
            let e = gx.edge(gx.edge_of_qubit(q).unwrap());
            let mut expected = vec![e.a];
            if let Some(b) = e.b {
                expected.push(b);
            }
            expected.sort_unstable();
            let mut got = flipped;
            got.sort_unstable();
            assert_eq!(got, expected, "qubit {q}");
        }
    }

    #[test]
    fn logical_operator_crosses_cut_odd_number_of_times() {
        let (code, gx, gz) = graphs(5);
        let lx: Vec<EdgeIndex> = code
            .logical_x_support()
            .into_iter()
            .map(|q| gx.edge_of_qubit(q).unwrap())
            .collect();
        assert!(gx.logical_parity(lx.iter().copied()));
        let lz: Vec<EdgeIndex> = code
            .logical_z_support()
            .into_iter()
            .map(|q| gz.edge_of_qubit(q).unwrap())
            .collect();
        assert!(gz.logical_parity(lz.iter().copied()));
    }

    #[test]
    fn stabilizer_chain_crosses_cut_even_number_of_times() {
        // Each Z stabilizer, viewed as a set of X-graph edges (its support),
        // is a closed chain and must not change the logical parity.
        let (code, gx, _) = graphs(5);
        for zs in code.z_stabilizers() {
            // The Z stabilizer detects X errors; a product of X errors on its
            // support has trivial syndrome only for X stabilizers.  Here we
            // instead check the homological property of plaquette boundaries:
            // take an X-stabilizer's support as an X-error chain.
            let _ = zs;
        }
        for xs in code.x_stabilizers() {
            let chain: Vec<EdgeIndex> = xs
                .support
                .iter()
                .map(|&q| gx.edge_of_qubit(q).unwrap())
                .collect();
            assert!(
                !gx.logical_parity(chain.iter().copied()),
                "plaquette at {} crosses the cut an odd number of times",
                xs.ancilla
            );
        }
    }

    #[test]
    fn duplicate_edges_cancel_in_logical_parity() {
        let (code, gx, _) = graphs(3);
        let cut = gx.cut_edges()[0];
        assert!(gx.logical_parity(
            [cut]
                .into_iter()
                .chain(
                    code.logical_x_support()
                        .into_iter()
                        .map(|q| gx.edge_of_qubit(q).unwrap())
                )
                .chain([cut])
        ));
        assert!(!gx.logical_parity([cut, cut]));
    }

    #[test]
    fn space_distance_is_graph_metric() {
        let (_, gx, _) = graphs(5);
        // neighbouring stabilizers connected by an edge are at distance 1
        for (i, e) in gx.edges().iter().enumerate() {
            if let Some(b) = e.b {
                assert_eq!(gx.space_distance(e.a, b), 1, "edge {i}");
            }
        }
        assert_eq!(gx.space_distance(0, 0), 0);
    }

    #[test]
    fn boundary_distance_extremes() {
        let (_, gx, _) = graphs(5);
        // A node adjacent to a boundary edge has boundary distance 1.
        for e in gx.edges() {
            if e.is_boundary() {
                assert_eq!(gx.boundary_distance(e.a), 1);
            }
        }
        // The most central node is about d/2 from the boundary.
        let central = gx.node_index(Coord::new(4, 3)).unwrap();
        assert_eq!(gx.boundary_distance(central), 2);
    }

    #[test]
    fn per_side_boundary_distances_sum_to_d() {
        // Crossing from the low to the high boundary always takes d edges, so
        // low + high = d for every node.
        for d in 2..=7usize {
            let (_, gx, gz) = graphs(d);
            for g in [&gx, &gz] {
                for n in 0..g.num_nodes() {
                    let (low, high) = g.boundary_distances(n);
                    assert_eq!(low + high, d as u32, "d={d}, node {n}");
                    assert_eq!(g.boundary_distance(n), low.min(high));
                }
            }
        }
    }

    #[test]
    fn other_endpoint_navigation() {
        let (_, gx, _) = graphs(3);
        for e in gx.edges() {
            if let Some(b) = e.b {
                assert_eq!(e.other(e.a), Some(b));
                assert_eq!(e.other(b), Some(e.a));
            } else {
                assert_eq!(e.other(e.a), None);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let (_, gx, _) = graphs(3);
        let e = gx.edge(0).clone();
        let bogus = gx.num_nodes() + 10;
        let _ = e.other(bogus);
    }
}
