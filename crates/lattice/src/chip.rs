//! Chip-level geometry: a grid of surface-code patches sharing one qubit
//! plane and one pool of spare physical qubits.
//!
//! The paper's system-level evaluation (Secs. V–VII) hosts many logical
//! qubits on a single chip.  A cosmic-ray strike lands in *chip* coordinates
//! and may straddle several patches; code-distance expansion draws physical
//! qubits from a shared spare pool, so concurrent expansions compete for
//! the same budget.  [`ChipLayout`] is the geometric substrate of that
//! picture: it places each patch's `(2d−1) × (2d−1)` site grid on the chip
//! plane (separated by a configurable gap of routing sites), converts
//! between chip and patch-local coordinates, and accounts for the spare
//! budget an expansion consumes.

use crate::{Coord, LatticeError, SurfaceCode};

/// Position of a patch on the chip's patch grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatchIndex {
    /// Patch row on the chip.
    pub row: usize,
    /// Patch column on the chip.
    pub col: usize,
}

impl PatchIndex {
    /// Creates a patch index.
    pub const fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }

    /// Whether two patches are edge-adjacent on the patch grid.
    pub fn is_adjacent(self, other: PatchIndex) -> bool {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr + dc == 1
    }
}

impl std::fmt::Display for PatchIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.row, self.col)
    }
}

/// A chip hosting a `patch_rows × patch_cols` grid of distance-`d` planar
/// surface-code patches plus a shared pool of spare physical qubits.
///
/// Patches are laid out on one global site grid ("chip coordinates"): the
/// patch at grid position `(r, c)` occupies the square of sites whose
/// top-left corner is `(r · pitch, c · pitch)`, where
/// `pitch = (2d − 1) + gap` and `gap` is the number of routing-site rows and
/// columns separating adjacent patch footprints.
///
/// ```
/// use q3de_lattice::{ChipLayout, Coord, PatchIndex};
///
/// let chip = ChipLayout::new(2, 3, 5, 100)?;
/// assert_eq!(chip.num_patches(), 6);
/// // d = 5 → 9×9 sites per patch, default gap 1 → pitch 10.
/// assert_eq!(chip.patch_origin(PatchIndex::new(1, 2)), Coord::new(10, 20));
/// // Chip coordinates map back onto the owning patch.
/// assert_eq!(chip.patch_containing(Coord::new(12, 21)), Some(PatchIndex::new(1, 2)));
/// // Gap sites belong to no patch.
/// assert_eq!(chip.patch_containing(Coord::new(9, 0)), None);
/// # Ok::<(), q3de_lattice::LatticeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipLayout {
    patch_rows: usize,
    patch_cols: usize,
    patch_distance: usize,
    gap: i32,
    spare_qubits: usize,
}

impl ChipLayout {
    /// Default number of routing sites between adjacent patch footprints.
    pub const DEFAULT_GAP: i32 = 1;

    /// Creates a chip of `patch_rows × patch_cols` distance-`patch_distance`
    /// patches with `spare_qubits` spare physical qubits in the shared
    /// expansion pool, using the default gap.
    ///
    /// # Errors
    ///
    /// Returns an error when the patch grid is empty or the distance is
    /// below [`SurfaceCode::MIN_DISTANCE`].
    pub fn new(
        patch_rows: usize,
        patch_cols: usize,
        patch_distance: usize,
        spare_qubits: usize,
    ) -> Result<Self, LatticeError> {
        if patch_rows == 0 || patch_cols == 0 {
            return Err(LatticeError::InvalidChipLayout {
                reason: format!("the patch grid {patch_rows}×{patch_cols} is empty"),
            });
        }
        if patch_distance < SurfaceCode::MIN_DISTANCE {
            return Err(LatticeError::DistanceTooSmall {
                requested: patch_distance,
                minimum: SurfaceCode::MIN_DISTANCE,
            });
        }
        Ok(Self {
            patch_rows,
            patch_cols,
            patch_distance,
            gap: Self::DEFAULT_GAP,
            spare_qubits,
        })
    }

    /// Overrides the inter-patch gap (in sites), builder style.
    ///
    /// # Errors
    ///
    /// Returns an error when `gap` is negative.
    pub fn with_gap(mut self, gap: i32) -> Result<Self, LatticeError> {
        if gap < 0 {
            return Err(LatticeError::InvalidChipLayout {
                reason: format!("the inter-patch gap {gap} must be non-negative"),
            });
        }
        self.gap = gap;
        Ok(self)
    }

    /// Number of patch rows.
    pub fn patch_rows(&self) -> usize {
        self.patch_rows
    }

    /// Number of patch columns.
    pub fn patch_cols(&self) -> usize {
        self.patch_cols
    }

    /// Number of patches on the chip.
    pub fn num_patches(&self) -> usize {
        self.patch_rows * self.patch_cols
    }

    /// The code distance of every patch.
    pub fn patch_distance(&self) -> usize {
        self.patch_distance
    }

    /// Linear site extent of one patch, `2d − 1`.
    pub fn patch_grid_size(&self) -> i32 {
        2 * self.patch_distance as i32 - 1
    }

    /// The inter-patch gap in sites.
    pub fn gap(&self) -> i32 {
        self.gap
    }

    /// Distance between the origins of adjacent patches,
    /// `patch_grid_size + gap`.
    pub fn pitch(&self) -> i32 {
        self.patch_grid_size() + self.gap
    }

    /// Total chip extent in site rows (the trailing gap is not counted).
    pub fn chip_rows(&self) -> i32 {
        self.patch_rows as i32 * self.pitch() - self.gap
    }

    /// Total chip extent in site columns.
    pub fn chip_cols(&self) -> i32 {
        self.patch_cols as i32 * self.pitch() - self.gap
    }

    /// Iterates over all patch indices in row-major order.
    pub fn patches(&self) -> impl Iterator<Item = PatchIndex> + '_ {
        let cols = self.patch_cols;
        (0..self.num_patches()).map(move |i| PatchIndex::new(i / cols, i % cols))
    }

    /// The row-major linear index of a patch (the order of
    /// [`ChipLayout::patches`]).
    ///
    /// # Panics
    ///
    /// Panics if the patch lies outside the grid.
    pub fn linear_index(&self, patch: PatchIndex) -> usize {
        assert!(
            patch.row < self.patch_rows && patch.col < self.patch_cols,
            "patch {patch} outside the {}×{} grid",
            self.patch_rows,
            self.patch_cols
        );
        patch.row * self.patch_cols + patch.col
    }

    /// The patch at a row-major linear index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn patch_at(&self, linear: usize) -> PatchIndex {
        assert!(
            linear < self.num_patches(),
            "patch index {linear} out of range"
        );
        PatchIndex::new(linear / self.patch_cols, linear % self.patch_cols)
    }

    /// The chip coordinate of a patch's top-left site.
    pub fn patch_origin(&self, patch: PatchIndex) -> Coord {
        let pitch = self.pitch();
        Coord::new(patch.row as i32 * pitch, patch.col as i32 * pitch)
    }

    /// Converts a chip coordinate into the local frame of `patch` (the frame
    /// [`SurfaceCode`] and the decoders operate in).  The result may lie
    /// outside the patch footprint — `Coord` is signed precisely so regions
    /// hanging off a patch edge stay expressible.
    pub fn to_local(&self, patch: PatchIndex, chip: Coord) -> Coord {
        let origin = self.patch_origin(patch);
        Coord::new(chip.row - origin.row, chip.col - origin.col)
    }

    /// Converts a patch-local coordinate into chip coordinates.
    pub fn to_chip(&self, patch: PatchIndex, local: Coord) -> Coord {
        let origin = self.patch_origin(patch);
        Coord::new(local.row + origin.row, local.col + origin.col)
    }

    /// The patch whose footprint contains the chip coordinate, or `None` for
    /// gap (routing) sites and off-chip coordinates.
    pub fn patch_containing(&self, chip: Coord) -> Option<PatchIndex> {
        if chip.row < 0 || chip.col < 0 {
            return None;
        }
        let pitch = self.pitch();
        let (pr, lr) = (chip.row / pitch, chip.row % pitch);
        let (pc, lc) = (chip.col / pitch, chip.col % pitch);
        let size = self.patch_grid_size();
        if lr >= size || lc >= size {
            return None;
        }
        if pr as usize >= self.patch_rows || pc as usize >= self.patch_cols {
            return None;
        }
        Some(PatchIndex::new(pr as usize, pc as usize))
    }

    /// The patches whose footprint intersects the half-open square
    /// `[origin, origin + extent)²` in chip coordinates — the fan-out set of
    /// a cosmic-ray strike of that footprint.
    pub fn patches_overlapping(&self, origin: Coord, extent: i32) -> Vec<PatchIndex> {
        if extent <= 0 {
            return Vec::new();
        }
        let size = self.patch_grid_size();
        let pitch = self.pitch();
        let mut out = Vec::new();
        for patch in self.patches() {
            let p = self.patch_origin(patch);
            let overlaps_rows = origin.row < p.row + size && origin.row + extent > p.row;
            let overlaps_cols = origin.col < p.col + size && origin.col + extent > p.col;
            if overlaps_rows && overlaps_cols {
                out.push(patch);
            }
        }
        debug_assert!(out.len() <= ((extent / pitch + 2) * (extent / pitch + 2)) as usize);
        out
    }

    /// The edge-adjacent neighbours of a patch (fewer at the chip edge).
    pub fn neighbors(&self, patch: PatchIndex) -> Vec<PatchIndex> {
        let mut out = Vec::with_capacity(4);
        if patch.row > 0 {
            out.push(PatchIndex::new(patch.row - 1, patch.col));
        }
        if patch.row + 1 < self.patch_rows {
            out.push(PatchIndex::new(patch.row + 1, patch.col));
        }
        if patch.col > 0 {
            out.push(PatchIndex::new(patch.row, patch.col - 1));
        }
        if patch.col + 1 < self.patch_cols {
            out.push(PatchIndex::new(patch.row, patch.col + 1));
        }
        out
    }

    /// Number of spare physical qubits in the shared expansion pool.
    pub fn spare_qubits(&self) -> usize {
        self.spare_qubits
    }

    /// Physical qubits of one baseline patch, `(2d − 1)²`.
    pub fn patch_physical_qubits(&self) -> usize {
        let s = self.patch_grid_size() as usize;
        s * s
    }

    /// Physical qubits of all baseline patches combined.
    pub fn base_physical_qubits(&self) -> usize {
        self.num_patches() * self.patch_physical_qubits()
    }

    /// Total provisioned physical qubits: baseline patches plus the spare
    /// pool.
    pub fn total_physical_qubits(&self) -> usize {
        self.base_physical_qubits() + self.spare_qubits
    }

    /// The qubit-overhead ratio of the provisioned chip relative to the
    /// spare-free baseline, `total / base`.
    pub fn qubit_overhead_ratio(&self) -> f64 {
        self.total_physical_qubits() as f64 / self.base_physical_qubits() as f64
    }

    /// The number of spare physical qubits consumed by expanding one patch
    /// from distance `from` to distance `to`:
    /// `(2·to − 1)² − (2·from − 1)²`.
    pub fn expansion_cost(from: usize, to: usize) -> usize {
        let q = |d: usize| (2 * d - 1) * (2 * d - 1);
        q(to).saturating_sub(q(from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_geometry_round_trips() {
        let chip = ChipLayout::new(2, 2, 7, 500).unwrap();
        assert_eq!(chip.patch_grid_size(), 13);
        assert_eq!(chip.pitch(), 14);
        assert_eq!(chip.chip_rows(), 27);
        assert_eq!(chip.chip_cols(), 27);
        for patch in chip.patches() {
            let origin = chip.patch_origin(patch);
            assert_eq!(chip.patch_containing(origin), Some(patch));
            let local = Coord::new(5, 9);
            assert_eq!(chip.to_local(patch, chip.to_chip(patch, local)), local);
            assert_eq!(chip.patch_at(chip.linear_index(patch)), patch);
        }
    }

    #[test]
    fn gap_sites_belong_to_no_patch() {
        let chip = ChipLayout::new(2, 2, 5, 0).unwrap();
        // pitch = 9 + 1; site row 9 is the horizontal gap.
        assert_eq!(chip.patch_containing(Coord::new(9, 0)), None);
        assert_eq!(chip.patch_containing(Coord::new(0, 9)), None);
        assert_eq!(chip.patch_containing(Coord::new(-1, 0)), None);
        assert_eq!(chip.patch_containing(Coord::new(100, 0)), None);
        assert_eq!(
            chip.patch_containing(Coord::new(10, 10)),
            Some(PatchIndex::new(1, 1))
        );
    }

    #[test]
    fn zero_gap_layout_tiles_the_plane() {
        let chip = ChipLayout::new(1, 2, 3, 0).unwrap().with_gap(0).unwrap();
        assert_eq!(chip.pitch(), 5);
        assert_eq!(chip.chip_cols(), 10);
        assert_eq!(
            chip.patch_containing(Coord::new(0, 4)),
            Some(PatchIndex::new(0, 0))
        );
        assert_eq!(
            chip.patch_containing(Coord::new(0, 5)),
            Some(PatchIndex::new(0, 1))
        );
    }

    #[test]
    fn straddling_region_overlaps_both_patches() {
        let chip = ChipLayout::new(1, 2, 7, 0).unwrap();
        // pitch 14: a square spanning chip columns 9..17 touches patch (0,0)
        // (cols ≤ 12) and patch (0,1) (cols ≥ 14).
        let overlapped = chip.patches_overlapping(Coord::new(2, 9), 8);
        assert_eq!(
            overlapped,
            vec![PatchIndex::new(0, 0), PatchIndex::new(0, 1)]
        );
        // A square fully inside patch (0,0) overlaps only it.
        assert_eq!(
            chip.patches_overlapping(Coord::new(2, 2), 4),
            vec![PatchIndex::new(0, 0)]
        );
        // A square fully inside the gap overlaps nothing.
        let gap_only = ChipLayout::new(1, 2, 7, 0)
            .unwrap()
            .with_gap(4)
            .unwrap()
            .patches_overlapping(Coord::new(0, 13), 4);
        assert!(gap_only.is_empty());
        assert!(chip.patches_overlapping(Coord::new(0, 0), 0).is_empty());
    }

    #[test]
    fn adjacency_and_neighbors() {
        let chip = ChipLayout::new(3, 3, 3, 0).unwrap();
        let center = PatchIndex::new(1, 1);
        let n = chip.neighbors(center);
        assert_eq!(n.len(), 4);
        for p in &n {
            assert!(center.is_adjacent(*p));
        }
        assert!(!center.is_adjacent(PatchIndex::new(0, 0)));
        assert!(!center.is_adjacent(center));
        assert_eq!(chip.neighbors(PatchIndex::new(0, 0)).len(), 2);
    }

    #[test]
    fn spare_budget_accounting() {
        let chip = ChipLayout::new(2, 2, 5, 300).unwrap();
        assert_eq!(chip.patch_physical_qubits(), 81);
        assert_eq!(chip.base_physical_qubits(), 324);
        assert_eq!(chip.total_physical_qubits(), 624);
        assert!((chip.qubit_overhead_ratio() - 624.0 / 324.0).abs() < 1e-12);
        assert_eq!(chip.spare_qubits(), 300);
        // d = 5 → d_exp = 5 + 2·4 = 13: (25)² − (9)² = 625 − 81 = 544.
        assert_eq!(ChipLayout::expansion_cost(5, 13), 544);
        assert_eq!(ChipLayout::expansion_cost(5, 5), 0);
    }

    #[test]
    fn invalid_layouts_are_rejected() {
        assert!(matches!(
            ChipLayout::new(0, 3, 5, 0),
            Err(LatticeError::InvalidChipLayout { .. })
        ));
        assert!(matches!(
            ChipLayout::new(2, 2, 1, 0),
            Err(LatticeError::DistanceTooSmall { .. })
        ));
        assert!(ChipLayout::new(1, 1, 3, 0).unwrap().with_gap(-1).is_err());
    }
}
