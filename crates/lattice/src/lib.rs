//! Surface-code lattice geometry for the Q3DE reproduction.
//!
//! This crate models the *planar* surface code used throughout the paper:
//! data qubits live on the edges of a `d × d` square lattice (equivalently on
//! one of the two sublattices of a `(2d−1) × (2d−1)` site grid), `Z`
//! stabilizers measure star parities and `X` stabilizers measure plaquette
//! parities.  The crate exposes
//!
//! * [`SurfaceCode`] — the static geometry: which sites are data qubits,
//!   which are ancillas, which data qubits each stabilizer monitors,
//! * [`MatchingGraph`] — the 2D decoding ("layer") graph for one error type,
//!   whose edges correspond to single data-qubit errors and whose boundary
//!   edges correspond to errors adjacent to a lattice boundary,
//! * [`deformation`] — the geometric bookkeeping of the `op_expand`
//!   instruction (Fig. 5 of the paper): which qubits are initialised, which
//!   stabilizers are added, and how the code is shrunk back,
//! * [`ChipLayout`] — the chip-level geometry: a grid of patches on one
//!   global site plane (chip ↔ patch-local coordinate conversion, strike
//!   fan-out sets) and the shared spare-qubit budget expansions draw from,
//! * [`Pauli`] / [`PauliString`] — minimal Pauli algebra shared by the noise
//!   model, the decoders and the control unit.
//!
//! # Example
//!
//! ```
//! use q3de_lattice::{SurfaceCode, ErrorKind};
//!
//! let code = SurfaceCode::new(5).unwrap();
//! assert_eq!(code.distance(), 5);
//! // A distance-5 planar code has 5² + 4² = 41 data qubits.
//! assert_eq!(code.num_data_qubits(), 41);
//! let graph = code.matching_graph(ErrorKind::X);
//! // Every Z stabilizer becomes a node of the X-error matching graph.
//! assert_eq!(graph.num_nodes(), code.z_stabilizers().len());
//! ```

#![deny(missing_docs)]

mod chip;
mod coord;
mod error;
mod graph;
mod pauli;
mod surface_code;

pub mod deformation;

pub use chip::{ChipLayout, PatchIndex};
pub use coord::Coord;
pub use error::LatticeError;
pub use graph::{EdgeIndex, GraphEdge, MatchingGraph, NodeIndex};
pub use pauli::{Pauli, PauliString};
pub use surface_code::{ErrorKind, QubitRole, Stabilizer, StabilizerKind, SurfaceCode};
