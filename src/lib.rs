//! Workspace root crate: re-exports for integration tests/examples.
pub use q3de::*;
